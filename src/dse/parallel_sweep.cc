#include "dse/parallel_sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "common/config_error.h"
#include "core/system.h"

namespace ara::dse {

namespace {

unsigned resolve_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

SweepResult run_one(const SweepJob& job, unsigned worker) {
  config_check(job.workload != nullptr, "SweepJob has no workload");
  SweepResult out;
  out.worker = worker;
  const auto t0 = std::chrono::steady_clock::now();
  core::System system(job.config);
  system.simulator().set_self_profiling(true);
  out.result = system.run(*job.workload);
  out.events = system.simulator().events_processed();
  out.metrics = obs::MetricsSnapshot::capture(system.stats());
  out.event_kinds = system.simulator().kind_stats();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace

ParallelSweepExecutor::ParallelSweepExecutor(unsigned jobs)
    : jobs_(resolve_jobs(jobs)) {}

std::vector<SweepResult> ParallelSweepExecutor::run(
    const std::vector<SweepJob>& sweep_jobs) const {
  std::vector<SweepResult> results(sweep_jobs.size());

  // Work distribution: an atomic cursor instead of static striding, so a
  // slow point (24 islands, chaining-heavy workload) doesn't idle the other
  // workers. Each worker writes only results[i] for the i values it claimed,
  // so result slots are race-free by construction.
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&](unsigned worker) {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= sweep_jobs.size()) return;
      try {
        results[i] = run_one(sweep_jobs[i], worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(jobs_, sweep_jobs.size()));
  if (workers <= 1) {
    drain(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(drain, w);
    }
    for (auto& t : pool) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<SweepResult> ParallelSweepExecutor::run(
    const std::vector<ConfigPoint>& points,
    const std::vector<const workloads::Workload*>& workloads) const {
  std::vector<SweepJob> sweep_jobs;
  sweep_jobs.reserve(points.size() * workloads.size());
  for (const auto& p : points) {
    for (const auto* wl : workloads) {
      sweep_jobs.push_back({p.config, wl});
    }
  }
  return run(sweep_jobs);
}

std::vector<SweepResult> ParallelSweepExecutor::run(
    const std::vector<ConfigPoint>& points,
    const workloads::Workload& workload) const {
  return run(points, std::vector<const workloads::Workload*>{&workload});
}

}  // namespace ara::dse
