// Injectable monotonic time source for host-side observability.
//
// Simulated time always comes from sim::Simulator::now(); host wall-clock
// readings are telemetry only (span durations, requests/sec) and must
// never feed back into simulation results. To keep that auditable, every
// consumer takes a MonotonicClock* seam instead of calling std::chrono
// directly: the ONLY sanctioned wall-clock read in src/ is
// MonotonicClock::host()'s implementation in src/obs/clock.cc, which
// ara_lint's no-wall-clock rule exempts by path (tools/lint_core.cc).
// Tests inject FakeClock to make span/window math fully deterministic.
#pragma once

#include <atomic>
#include <cstdint>

namespace ara::obs {

/// Monotonic nanosecond clock. Implementations must be safe to call from
/// multiple threads concurrently.
class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;

  /// Nanoseconds since an arbitrary (per-clock) epoch; never decreases.
  virtual std::uint64_t now_ns() = 0;

  /// The process-wide host clock (std::chrono::steady_clock underneath).
  /// Its definition in clock.cc is the single sanctioned wall-clock site.
  static MonotonicClock& host();
};

/// Deterministic fake: time moves only when a test advances it, so span
/// durations and window bucket rollovers are exact, reproducible values.
class FakeClock final : public MonotonicClock {
 public:
  explicit FakeClock(std::uint64_t start_ns = 0) : now_(start_ns) {}

  std::uint64_t now_ns() override {
    return now_.load(std::memory_order_acquire);
  }
  void advance_ns(std::uint64_t by) {
    now_.fetch_add(by, std::memory_order_acq_rel);
  }
  void set_ns(std::uint64_t t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace ara::obs
