#include "obs/json_check.h"

#include <cctype>
#include <cstdint>

namespace ara::obs {

namespace {

/// Recursive-descent validator over a string_view. Depth-limited so a
/// pathological input cannot overflow the host stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value(0)) {
      emit(error);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after top-level value");
      emit(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  void emit(std::string* error) const {
    if (error != nullptr) {
      *error = "offset " + std::to_string(err_pos_) + ": " + err_;
    }
  }

  bool fail(const char* message) {
    if (err_ == nullptr) {
      err_ = message;
      err_pos_ = pos_;
    }
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key string");
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (!eof()) {
      const auto c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = peek();
        switch (e) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            ++pos_;
            break;
          case 'u': {
            ++pos_;
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
                return fail("invalid \\u escape");
              }
              ++pos_;
            }
            break;
          }
          default:
            return fail("invalid escape character");
        }
        continue;
      }
      if (c < 0x20) return fail("raw control character in string");
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  const char* err_ = nullptr;
  std::size_t err_pos_ = 0;
};

}  // namespace

bool validate_json(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace ara::obs
