// Request-scoped tracing for the serve/DSE path.
//
// A RequestTrace is minted per served request (trace id + client) and
// travels by pointer through FairQueue -> dse::run -> the executor,
// accumulating one duration per lifecycle phase (ScopedSpan) and one
// outcome count per point (hit/alias/follower/miss/failed). Everything is
// observability-only: a null trace (the default everywhere) makes every
// call here a no-op, and times come from the injectable MonotonicClock
// seam, so traced and untraced runs produce bit-identical sweep results.
//
// Threading: a RequestTrace is owned by one request and is only ever
// touched by the thread currently advancing that request (the submitting
// session thread before/after the queue, the handler thread in between —
// the FairQueue hand-off orders those accesses). It needs no lock.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/clock.h"

namespace ara::obs {

/// Lifecycle phases of one served request, in observation order.
enum class Phase : std::size_t {
  kQueued = 0,       // admission queue wait (push -> handler pop)
  kCacheLookup = 1,  // classification pre-pass (cache probes + claims)
  kSimulate = 2,     // executor time for this request's own misses
  kCoalesceWait = 3, // waiting on another request's in-flight leader
  kSerialize = 4,    // response encoding
  // dse::search stages; a search charges each optimizer round here (its
  // inner dse::run calls are untraced so no interval is double-counted).
  kSample = 5,       // rung-0 sampled evaluations
  kHalve = 6,        // successive-halving promotion rungs
  kRefine = 7,       // local-refinement evaluations around the incumbent
};

inline constexpr std::size_t kNumPhases = 8;

inline const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kQueued: return "queued";
    case Phase::kCacheLookup: return "cache_lookup";
    case Phase::kSimulate: return "simulate";
    case Phase::kCoalesceWait: return "coalesce_wait";
    case Phase::kSerialize: return "serialize";
    case Phase::kSample: return "sample";
    case Phase::kHalve: return "halve";
    case Phase::kRefine: return "refine";
  }
  return "unknown";
}

/// Per-request trace record: identity, per-phase durations, and per-point
/// outcome counts. Plain data — the request log serializes it, the window
/// aggregates it.
struct RequestTrace {
  std::uint64_t id = 0;      // minted at admission; unique per server
  std::string client;        // fairness bucket from the request
  std::string workload;      // benchmark name ("" for non-sweeps)
  std::uint64_t points = 0;  // design points in the request

  std::uint64_t start_ns = 0;  // clock reading at admission
  std::uint64_t total_ns = 0;  // admission -> response ready
  std::array<std::uint64_t, kNumPhases> phase_ns{};

  /// Point outcomes (sum == points for a successful sweep).
  std::uint64_t hits = 0;       // served from the result cache
  std::uint64_t aliases = 0;    // duplicate of a point in this request
  std::uint64_t followers = 0;  // waited on a concurrent request's leader
  std::uint64_t misses = 0;     // simulated fresh by this request
  std::uint64_t failed = 0;     // simulation attempted but errored

  /// Typed error code ("" on success; bad_request/overloaded/draining/
  /// failed mirror the protocol's error codes).
  std::string error;

  /// Time source for spans; null disables timing (counts still work).
  MonotonicClock* clock = nullptr;

  std::uint64_t phase(Phase p) const {
    return phase_ns[static_cast<std::size_t>(p)];
  }
  void add_phase(Phase p, std::uint64_t ns) {
    phase_ns[static_cast<std::size_t>(p)] += ns;
  }
  /// Sum of all recorded phase durations (always <= total_ns: phases are
  /// disjoint sub-intervals of the admission->response interval).
  std::uint64_t phase_total_ns() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : phase_ns) sum += v;
    return sum;
  }
};

/// RAII phase timer: charges the elapsed clock time to one phase of one
/// trace. Null trace or null clock = no-op (zero perturbation on the
/// untraced path).
class ScopedSpan {
 public:
  ScopedSpan(RequestTrace* trace, Phase phase)
      : trace_(trace != nullptr && trace->clock != nullptr ? trace : nullptr),
        phase_(phase),
        t0_(trace_ != nullptr ? trace_->clock->now_ns() : 0) {}
  ~ScopedSpan() { stop(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Record now instead of at destruction; idempotent.
  void stop() {
    if (trace_ == nullptr) return;
    trace_->add_phase(phase_, trace_->clock->now_ns() - t0_);
    trace_ = nullptr;
  }

 private:
  RequestTrace* trace_;
  Phase phase_;
  std::uint64_t t0_;
};

}  // namespace ara::obs
