#include "obs/metrics_export.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace ara::obs {

namespace {

/// Display-oriented precision for write_json/write_csv; the exact writer
/// passes 17 (see json_number in json_io.h).
constexpr int kDisplayDigits = 12;
constexpr int kExactDigits = 17;

/// CSV fields are stat names and numbers; quote only if a name ever carries
/// a delimiter.
void csv_field(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void csv_number(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", std::isfinite(v) ? v : 0.0);
  os << buf;
}

void write_snapshot_object(std::ostream& os, const MetricsSnapshot& snap,
                           int digits) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, c.name);
    os << "\":" << c.value;
  }
  os << "},\"accumulators\":{";
  first = true;
  for (const auto& a : snap.accumulators) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, a.name);
    os << "\":{\"sum\":";
    json_number(os, a.sum, digits);
    os << ",\"count\":" << a.count << ",\"mean\":";
    json_number(os, a.mean, digits);
    os << ",\"min\":";
    json_number(os, a.min, digits);
    os << ",\"max\":";
    json_number(os, a.max, digits);
    os << "}";
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, h.name);
    os << "\":{\"count\":" << h.count << ",\"mean\":";
    json_number(os, h.mean, digits);
    os << ",\"min\":" << h.min << ",\"max\":" << h.max << ",\"p50\":" << h.p50
       << ",\"p95\":" << h.p95
       << ",\"p99\":" << h.p99 << ",\"bucket_width\":" << h.bucket_width
       << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) os << ",";
      os << h.buckets[i];
    }
    os << "]}";
  }
  os << "}}";
}

}  // namespace

std::uint64_t MetricsSnapshot::counter_sum_by_prefix(
    const std::string& prefix) const {
  std::uint64_t sum = 0;
  for (const auto& c : counters) {
    if (c.name.compare(0, prefix.size(), prefix) == 0) sum += c.value;
  }
  return sum;
}

MetricsSnapshot MetricsSnapshot::capture(const sim::StatRegistry& registry) {
  MetricsSnapshot snap;
  snap.counters.reserve(registry.counters().size());
  for (const auto& [name, c] : registry.counters()) {
    snap.counters.push_back({name, c->value()});
  }
  snap.accumulators.reserve(registry.accumulators().size());
  for (const auto& [name, a] : registry.accumulators()) {
    snap.accumulators.push_back(
        {name, a->sum(), a->count(), a->mean(), a->min(), a->max()});
  }
  snap.histograms.reserve(registry.histograms().size());
  for (const auto& [name, h] : registry.histograms()) {
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.mean = h->mean();
    s.min = h->min_seen();
    s.max = h->max_seen();
    s.p50 = h->percentile(0.50);
    s.p95 = h->percentile(0.95);
    s.p99 = h->percentile(0.99);
    s.bucket_width = h->bucket_width();
    s.buckets = h->buckets();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsExporter::write_json(std::ostream& os,
                                 const MetricsSnapshot& snapshot) {
  write_snapshot_object(os, snapshot, kDisplayDigits);
  os << "\n";
}

void MetricsExporter::write_snapshot_exact(std::ostream& os,
                                           const MetricsSnapshot& snapshot) {
  write_snapshot_object(os, snapshot, kExactDigits);
}

bool MetricsExporter::snapshot_from_json(const JsonValue& value,
                                         MetricsSnapshot* out) {
  *out = MetricsSnapshot{};
  const JsonValue* counters = value.find("counters");
  const JsonValue* accumulators = value.find("accumulators");
  const JsonValue* histograms = value.find("histograms");
  if (counters == nullptr || !counters->is_object() ||
      accumulators == nullptr || !accumulators->is_object() ||
      histograms == nullptr || !histograms->is_object()) {
    return false;
  }
  for (const auto& [name, v] : counters->members) {
    if (!v.is_number()) return false;
    out->counters.push_back({name, v.as_u64()});
  }
  for (const auto& [name, v] : accumulators->members) {
    const JsonValue* sum = v.find("sum");
    const JsonValue* count = v.find("count");
    const JsonValue* mean = v.find("mean");
    const JsonValue* min = v.find("min");
    const JsonValue* max = v.find("max");
    if (sum == nullptr || count == nullptr || mean == nullptr ||
        min == nullptr || max == nullptr) {
      return false;
    }
    out->accumulators.push_back({name, sum->as_double(), count->as_u64(),
                                 mean->as_double(), min->as_double(),
                                 max->as_double()});
  }
  for (const auto& [name, v] : histograms->members) {
    const JsonValue* count = v.find("count");
    const JsonValue* mean = v.find("mean");
    const JsonValue* min = v.find("min");
    const JsonValue* max = v.find("max");
    const JsonValue* p50 = v.find("p50");
    const JsonValue* p95 = v.find("p95");
    const JsonValue* p99 = v.find("p99");
    const JsonValue* width = v.find("bucket_width");
    const JsonValue* buckets = v.find("buckets");
    if (count == nullptr || mean == nullptr || min == nullptr ||
        max == nullptr || p50 == nullptr || p95 == nullptr ||
        p99 == nullptr || width == nullptr || buckets == nullptr ||
        !buckets->is_array()) {
      return false;
    }
    HistogramSample s;
    s.name = name;
    s.count = count->as_u64();
    s.mean = mean->as_double();
    s.min = min->as_u64();
    s.max = max->as_u64();
    s.p50 = p50->as_u64();
    s.p95 = p95->as_u64();
    s.p99 = p99->as_u64();
    s.bucket_width = width->as_u64();
    s.buckets.reserve(buckets->items.size());
    for (const auto& b : buckets->items) {
      if (!b.is_number()) return false;
      s.buckets.push_back(b.as_u64());
    }
    out->histograms.push_back(std::move(s));
  }
  return true;
}

void MetricsExporter::write_csv(std::ostream& os,
                                const MetricsSnapshot& snapshot) {
  os << "kind,name,value,count,mean,min,max,p50,p95,p99\n";
  for (const auto& c : snapshot.counters) {
    os << "counter,";
    csv_field(os, c.name);
    os << "," << c.value << ",,,,,,,\n";
  }
  for (const auto& a : snapshot.accumulators) {
    os << "accumulator,";
    csv_field(os, a.name);
    os << ",";
    csv_number(os, a.sum);
    os << "," << a.count << ",";
    csv_number(os, a.mean);
    os << ",";
    csv_number(os, a.min);
    os << ",";
    csv_number(os, a.max);
    os << ",,,\n";
  }
  for (const auto& h : snapshot.histograms) {
    os << "histogram,";
    csv_field(os, h.name);
    os << ",," << h.count << ",";
    csv_number(os, h.mean);
    os << "," << h.min << ","
       << h.max << "," << h.p50 << "," << h.p95 << "," << h.p99 << "\n";
  }
}

void MetricsExporter::write_labeled_json(
    std::ostream& os,
    const std::vector<std::pair<std::string, const MetricsSnapshot*>>&
        points) {
  os << "{\"points\":[";
  bool first = true;
  for (const auto& [label, snap] : points) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"label\":\"";
    json_escape(os, label);
    os << "\",\"metrics\":";
    write_snapshot_object(os, *snap, kDisplayDigits);
    os << "}";
  }
  os << "\n]}\n";
}

bool MetricsExporter::write_file(const std::string& path,
                                 const MetricsSnapshot& snapshot) {
  std::ofstream os(path);
  if (!os) return false;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_csv(os, snapshot);
  } else {
    write_json(os, snapshot);
  }
  return static_cast<bool>(os);
}

}  // namespace ara::obs
