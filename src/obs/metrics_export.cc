#include "obs/metrics_export.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace ara::obs {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << raw;
        }
    }
  }
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  os << buf;
}

/// CSV fields are stat names and numbers; quote only if a name ever carries
/// a delimiter.
void csv_field(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void csv_number(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", std::isfinite(v) ? v : 0.0);
  os << buf;
}

void write_snapshot_object(std::ostream& os, const MetricsSnapshot& snap) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, c.name);
    os << "\":" << c.value;
  }
  os << "},\"accumulators\":{";
  first = true;
  for (const auto& a : snap.accumulators) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, a.name);
    os << "\":{\"sum\":";
    json_number(os, a.sum);
    os << ",\"count\":" << a.count << ",\"mean\":";
    json_number(os, a.mean);
    os << ",\"min\":";
    json_number(os, a.min);
    os << ",\"max\":";
    json_number(os, a.max);
    os << "}";
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, h.name);
    os << "\":{\"count\":" << h.count << ",\"mean\":";
    json_number(os, h.mean);
    os << ",\"max\":" << h.max << ",\"p50\":" << h.p50 << ",\"p95\":" << h.p95
       << ",\"p99\":" << h.p99 << ",\"bucket_width\":" << h.bucket_width
       << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) os << ",";
      os << h.buckets[i];
    }
    os << "]}";
  }
  os << "}}";
}

}  // namespace

std::uint64_t MetricsSnapshot::counter_sum_by_prefix(
    const std::string& prefix) const {
  std::uint64_t sum = 0;
  for (const auto& c : counters) {
    if (c.name.compare(0, prefix.size(), prefix) == 0) sum += c.value;
  }
  return sum;
}

MetricsSnapshot MetricsSnapshot::capture(const sim::StatRegistry& registry) {
  MetricsSnapshot snap;
  snap.counters.reserve(registry.counters().size());
  for (const auto& [name, c] : registry.counters()) {
    snap.counters.push_back({name, c->value()});
  }
  snap.accumulators.reserve(registry.accumulators().size());
  for (const auto& [name, a] : registry.accumulators()) {
    snap.accumulators.push_back(
        {name, a->sum(), a->count(), a->mean(), a->min(), a->max()});
  }
  snap.histograms.reserve(registry.histograms().size());
  for (const auto& [name, h] : registry.histograms()) {
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.mean = h->mean();
    s.max = h->max_seen();
    s.p50 = h->percentile(0.50);
    s.p95 = h->percentile(0.95);
    s.p99 = h->percentile(0.99);
    s.bucket_width = h->bucket_width();
    s.buckets = h->buckets();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsExporter::write_json(std::ostream& os,
                                 const MetricsSnapshot& snapshot) {
  write_snapshot_object(os, snapshot);
  os << "\n";
}

void MetricsExporter::write_csv(std::ostream& os,
                                const MetricsSnapshot& snapshot) {
  os << "kind,name,value,count,mean,min,max,p50,p95,p99\n";
  for (const auto& c : snapshot.counters) {
    os << "counter,";
    csv_field(os, c.name);
    os << "," << c.value << ",,,,,,,\n";
  }
  for (const auto& a : snapshot.accumulators) {
    os << "accumulator,";
    csv_field(os, a.name);
    os << ",";
    csv_number(os, a.sum);
    os << "," << a.count << ",";
    csv_number(os, a.mean);
    os << ",";
    csv_number(os, a.min);
    os << ",";
    csv_number(os, a.max);
    os << ",,,\n";
  }
  for (const auto& h : snapshot.histograms) {
    os << "histogram,";
    csv_field(os, h.name);
    os << ",," << h.count << ",";
    csv_number(os, h.mean);
    os << ",0,";
    os << h.max << "," << h.p50 << "," << h.p95 << "," << h.p99 << "\n";
  }
}

void MetricsExporter::write_labeled_json(
    std::ostream& os,
    const std::vector<std::pair<std::string, const MetricsSnapshot*>>&
        points) {
  os << "{\"points\":[";
  bool first = true;
  for (const auto& [label, snap] : points) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"label\":\"";
    json_escape(os, label);
    os << "\",\"metrics\":";
    write_snapshot_object(os, *snap);
    os << "}";
  }
  os << "\n]}\n";
}

bool MetricsExporter::write_file(const std::string& path,
                                 const MetricsSnapshot& snapshot) {
  std::ofstream os(path);
  if (!os) return false;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_csv(os, snapshot);
  } else {
    write_json(os, snapshot);
  }
  return static_cast<bool>(os);
}

}  // namespace ara::obs
