// Strict JSON validation with zero external dependencies.
//
// validate_json() accepts exactly the RFC 8259 grammar: one top-level value,
// no trailing content, no comments, no trailing commas, no bare NaN/Inf, no
// raw control characters inside strings. It exists so exporter regressions
// (TraceCollector, MetricsExporter) fail tests and the CLI smoke ctest
// instead of surfacing later as a Perfetto "could not parse" error.
#pragma once

#include <string>
#include <string_view>

namespace ara::obs {

/// True when `text` is exactly one valid JSON value (plus whitespace).
/// On failure, `*error` (if non-null) gets a short "offset N: ..." message.
bool validate_json(std::string_view text, std::string* error = nullptr);

}  // namespace ara::obs
