// Machine-readable metrics export for the StatRegistry.
//
// MetricsSnapshot is a plain-value copy of a registry's contents (counters,
// accumulators, histogram summaries + buckets) that can outlive the System
// that produced it — design-space sweeps attach one per point so reports
// and exporters can drill into any point after the simulators are gone.
// MetricsExporter serializes snapshots as JSON (nested by stat kind) or CSV
// (one flat row per stat), the two formats downstream tooling actually
// consumes.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_io.h"
#include "sim/stats.h"

namespace ara::obs {

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct AccumulatorSample {
  std::string name;
  double sum = 0;
  std::uint64_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t bucket_width = 0;
  std::vector<std::uint64_t> buckets;  // last bucket = overflow
};

/// Value snapshot of a full StatRegistry, name-sorted within each kind.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<AccumulatorSample> accumulators;
  std::vector<HistogramSample> histograms;

  bool empty() const {
    return counters.empty() && accumulators.empty() && histograms.empty();
  }

  /// Sum of all counter samples whose name starts with `prefix` (mirrors
  /// StatRegistry::counter_sum_by_prefix for detached snapshots).
  std::uint64_t counter_sum_by_prefix(const std::string& prefix) const;

  static MetricsSnapshot capture(const sim::StatRegistry& registry);
};

class MetricsExporter {
 public:
  /// Full snapshot as one JSON object:
  ///   {"counters":{...},"accumulators":{...},"histograms":{...}}
  static void write_json(std::ostream& os, const MetricsSnapshot& snapshot);

  /// Flat CSV: kind,name,value,count,mean,min,max,p50,p95,p99.
  static void write_csv(std::ostream& os, const MetricsSnapshot& snapshot);

  /// Labeled multi-point export (sweeps): {"points":[{"label":..,
  /// "metrics":{...}}, ...]}.
  static void write_labeled_json(
      std::ostream& os,
      const std::vector<std::pair<std::string, const MetricsSnapshot*>>&
          points);

  /// Write to `path`, picking the format by extension (".csv" -> CSV,
  /// anything else -> JSON). Returns false when the file cannot be written.
  static bool write_file(const std::string& path,
                         const MetricsSnapshot& snapshot);

  /// Snapshot object with 17-significant-digit doubles (no trailing
  /// newline): the on-disk result cache needs a bit-exact round-trip,
  /// which the display-oriented 12-digit write_json does not guarantee.
  static void write_snapshot_exact(std::ostream& os,
                                   const MetricsSnapshot& snapshot);

  /// Rebuild a snapshot from a parsed snapshot object (as produced by
  /// write_json / write_snapshot_exact). Returns false when `value` does
  /// not have the expected shape.
  static bool snapshot_from_json(const JsonValue& value,
                                 MetricsSnapshot* out);
};

}  // namespace ara::obs
