#include "obs/request_log.h"

#include <cstdio>
#include <sstream>

#include "obs/json_io.h"

namespace ara::obs {

namespace {

/// Durations are emitted twice: exact integer nanoseconds (so downstream
/// checks like "phases sum to within the total" are exact arithmetic, not
/// float comparisons) and a display-precision total in milliseconds.
constexpr int kMsDigits = 12;

}  // namespace

std::string RequestLog::format_line(const RequestTrace& trace,
                                    std::uint64_t slow_ms) {
  std::ostringstream os;
  os << "{\"trace_id\":" << trace.id << ",\"client\":\"";
  json_escape(os, trace.client);
  os << "\",\"workload\":\"";
  json_escape(os, trace.workload);
  os << "\",\"points\":" << trace.points
     << ",\"total_ns\":" << trace.total_ns << ",\"total_ms\":";
  json_number(os, static_cast<double>(trace.total_ns) / 1e6, kMsDigits);
  os << ",\"phases_ns\":{";
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    if (p > 0) os << ",";
    os << "\"" << phase_name(static_cast<Phase>(p))
       << "\":" << trace.phase_ns[p];
  }
  os << "},\"outcomes\":{\"hit\":" << trace.hits
     << ",\"alias\":" << trace.aliases << ",\"follower\":" << trace.followers
     << ",\"miss\":" << trace.misses << ",\"failed\":" << trace.failed
     << "},\"error\":\"";
  json_escape(os, trace.error);
  os << "\",\"slow\":"
     << (slow_ms > 0 && trace.total_ns >= slow_ms * 1000000ull ? "true"
                                                               : "false")
     << "}";
  return os.str();
}

RequestLog::RequestLog(Options opts) : opts_(std::move(opts)) {
  common::MutexLock lock(mu_);
  // Append mode: a restarted daemon continues the same log; ate gives the
  // current size so rotation accounting stays correct across restarts.
  out_.open(opts_.path, std::ios::app | std::ios::ate);
  if (out_) {
    const std::ofstream::pos_type at = out_.tellp();
    bytes_ = at > 0 ? static_cast<std::uint64_t>(at) : 0;
  }
}

bool RequestLog::ok() const {
  common::MutexLock lock(mu_);
  return static_cast<bool>(out_);
}

bool RequestLog::append(const RequestTrace& trace) {
  const std::string line = format_line(trace, opts_.slow_ms);
  common::MutexLock lock(mu_);
  if (!out_) return false;
  if (bytes_ > 0 && bytes_ + line.size() + 1 > opts_.max_bytes) {
    out_.close();
    const std::string old = opts_.path + ".1";
    std::remove(old.c_str());
    std::rename(opts_.path.c_str(), old.c_str());
    out_.open(opts_.path, std::ios::trunc);
    bytes_ = 0;
    ++rotations_;
    if (!out_) return false;
  }
  out_ << line << "\n";
  out_.flush();  // every line must be complete on disk for live tailing
  if (!out_) return false;
  bytes_ += line.size() + 1;
  ++lines_;
  return true;
}

std::uint64_t RequestLog::lines() const {
  common::MutexLock lock(mu_);
  return lines_;
}

std::uint64_t RequestLog::rotations() const {
  common::MutexLock lock(mu_);
  return rotations_;
}

}  // namespace ara::obs
