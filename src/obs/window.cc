#include "obs/window.h"

#include <algorithm>

namespace ara::obs {

SlidingWindow::SlidingWindow(std::uint64_t bucket_ns, std::size_t buckets)
    : bucket_ns_(bucket_ns == 0 ? 1 : bucket_ns),
      ring_(buckets == 0 ? 1 : buckets) {}

std::size_t SlidingWindow::latency_bin(std::uint64_t ns) {
  std::size_t bin = 0;
  while (ns != 0) {
    ns >>= 1;
    ++bin;
  }
  return bin;  // == std::bit_width(ns); 0 only for ns == 0
}

double SlidingWindow::bin_midpoint_ns(std::size_t bin) {
  if (bin == 0) return 0.0;
  // Bin b covers [2^(b-1), 2^b); report the arithmetic midpoint.
  const double lo = static_cast<double>(1ull << (bin - 1 < 63 ? bin - 1 : 63));
  return lo * 1.5;
}

void SlidingWindow::record(std::uint64_t now_ns, std::uint64_t latency_ns,
                           std::uint64_t points,
                           std::uint64_t points_avoided) {
  const std::uint64_t epoch = now_ns / bucket_ns_;
  Bucket& b = slot(epoch);
  if (b.epoch != epoch) b = Bucket{.epoch = epoch};
  ++b.requests;
  b.points += points;
  b.points_avoided += points_avoided;
  ++b.latency_bins[latency_bin(latency_ns)];
}

SlidingWindow::Summary SlidingWindow::summarize(std::uint64_t now_ns) const {
  const std::uint64_t cur = now_ns / bucket_ns_;
  const std::uint64_t oldest =
      cur >= ring_.size() - 1 ? cur - (ring_.size() - 1) : 0;

  Summary s;
  std::uint64_t bins[kLatencyBins] = {};
  for (const Bucket& b : ring_) {
    if (b.epoch == kDeadEpoch || b.epoch < oldest || b.epoch > cur) continue;
    s.requests += b.requests;
    s.points += b.points;
    s.points_avoided += b.points_avoided;
    for (std::size_t i = 0; i < kLatencyBins; ++i) {
      bins[i] += b.latency_bins[i];
    }
  }
  if (s.requests == 0) return s;

  // Rate over the span the live buckets could cover: from the start of the
  // oldest live bucket through "now". A freshly started server therefore
  // reports its true short-horizon rate instead of diluting over 60 empty
  // seconds it never lived through.
  std::uint64_t oldest_live = cur;
  for (const Bucket& b : ring_) {
    if (b.epoch == kDeadEpoch || b.epoch < oldest || b.epoch > cur) continue;
    oldest_live = std::min(oldest_live, b.epoch);
  }
  s.span_ns = now_ns - oldest_live * bucket_ns_;
  if (s.span_ns == 0) s.span_ns = 1;
  s.requests_per_sec =
      static_cast<double>(s.requests) * 1e9 / static_cast<double>(s.span_ns);
  s.hit_ratio = s.points == 0 ? 0.0
                              : static_cast<double>(s.points_avoided) /
                                    static_cast<double>(s.points);

  auto quantile = [&](double fraction) {
    const auto target = static_cast<std::uint64_t>(
        fraction * static_cast<double>(s.requests));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kLatencyBins; ++i) {
      seen += bins[i];
      if (seen > target) return bin_midpoint_ns(i) / 1e6;
    }
    return bin_midpoint_ns(kLatencyBins - 1) / 1e6;
  };
  s.p50_ms = quantile(0.50);
  s.p95_ms = quantile(0.95);
  s.p99_ms = quantile(0.99);
  return s;
}

}  // namespace ara::obs
