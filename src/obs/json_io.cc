#include "obs/json_io.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ara::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::as_double() const {
  if (kind != Kind::kNumber) return 0.0;
  return std::strtod(text.c_str(), nullptr);
}

std::uint64_t JsonValue::as_u64() const {
  if (kind != Kind::kNumber) return 0;
  return std::strtoull(text.c_str(), nullptr, 10);
}

namespace {

/// Recursive-descent reader; mirrors the grammar of obs::validate_json
/// (json_check.cc) but materializes a DOM. Depth-limited against
/// pathological nesting.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  bool run(JsonValue* out, std::string* error) {
    skip_ws();
    if (!value(out, 0)) {
      emit(error);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after top-level value");
      emit(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  void emit(std::string* error) const {
    if (error != nullptr) {
      *error = "offset " + std::to_string(err_pos_) + ": " + err_;
    }
  }

  bool fail(const char* message) {
    if (err_ == nullptr) {
      err_ = message;
      err_pos_ = pos_;
    }
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return object(out, depth);
      case '[':
        return array(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return string(&out->text);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return number(out);
    }
  }

  bool object(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key string");
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(&member, depth + 1)) return false;
      out->members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue item;
      if (!value(&item, depth + 1)) return false;
      out->items.push_back(std::move(item));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string(std::string* out) {
    ++pos_;  // '"'
    while (!eof()) {
      const auto c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = peek();
        switch (e) {
          case '"':
            out->push_back('"');
            ++pos_;
            break;
          case '\\':
            out->push_back('\\');
            ++pos_;
            break;
          case '/':
            out->push_back('/');
            ++pos_;
            break;
          case 'b':
            out->push_back('\b');
            ++pos_;
            break;
          case 'f':
            out->push_back('\f');
            ++pos_;
            break;
          case 'n':
            out->push_back('\n');
            ++pos_;
            break;
          case 'r':
            out->push_back('\r');
            ++pos_;
            break;
          case 't':
            out->push_back('\t');
            ++pos_;
            break;
          case 'u': {
            ++pos_;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
                return fail("invalid \\u escape");
              }
              const char h = peek();
              cp = cp * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0'
                                : (h | 0x20) - 'a' + 10);
              ++pos_;
            }
            // UTF-8 encode the code point (surrogate pairs are not
            // produced by our own writers; a lone surrogate is preserved
            // as-is in its 3-byte form, which keeps round-trips stable).
            if (cp < 0x80) {
              out->push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default:
            return fail("invalid escape character");
        }
        continue;
      }
      if (c < 0x20) return fail("raw control character in string");
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    out->text.assign(text_.substr(start, pos_ - start));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  const char* err_ = nullptr;
  std::size_t err_pos_ = 0;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  return Reader(text).run(out, error);
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << raw;
        }
    }
  }
}

void json_number(std::ostream& os, double v, int digits) {
  if (!std::isfinite(v)) {
    os << 0;  // JSON has no NaN/Inf
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  os << buf;
}

}  // namespace ara::obs
