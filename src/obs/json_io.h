// Minimal JSON reader (DOM) + shared writer helpers, zero dependencies.
//
// The exporters in this module only ever needed to WRITE JSON; the DSE
// result cache also needs to READ it back (RunResult + MetricsSnapshot
// round-trip through the on-disk cache tier). parse_json() accepts the same
// strict RFC 8259 grammar validate_json() enforces and builds a small DOM.
// Numbers keep their raw source token so 64-bit counters (which do not fit
// a double) and 17-digit doubles both round-trip exactly.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ara::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  /// String contents (unescaped) for kString; the raw numeric token for
  /// kNumber.
  std::string text;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup (first match); null when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Numeric conversions (0 when not a number).
  double as_double() const;
  std::uint64_t as_u64() const;
};

/// Parse exactly one JSON value (plus surrounding whitespace). On failure
/// returns false and fills `*error` (if non-null) with "offset N: ...".
bool parse_json(std::string_view text, JsonValue* out,
                std::string* error = nullptr);

/// Writer helpers shared by MetricsExporter, TraceCollector-adjacent code
/// and the result cache.
void json_escape(std::ostream& os, std::string_view s);
/// `digits` significant digits; 17 round-trips doubles exactly. NaN/Inf
/// (invalid JSON) degrade to 0.
void json_number(std::ostream& os, double v, int digits);

}  // namespace ara::obs
