// Sliding-window time-series for the serve stats endpoint.
//
// A SlidingWindow is a ring of fixed-width time buckets (default 60 x 1s)
// keyed by epoch (now_ns / bucket_ns). record() drops a completed
// request's latency and point counts into the bucket for "now",
// recycling any slot whose epoch has rotated out; summarize() merges the
// buckets still inside the window into requests/sec, hit ratio, and
// p50/p95/p99 latency. Latencies aggregate into power-of-two bins
// (bin = bit_width(ns)), so a bucket is a fixed ~0.5 KiB regardless of
// traffic; quantiles report the bin's representative midpoint value —
// coarse (within ~1.5x) but allocation-free and exact to reproduce in
// tests with a FakeClock.
//
// Not internally locked: the owner serializes access (Server uses mu_,
// the same discipline as FairQueue and StatRegistry).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ara::obs {

class SlidingWindow {
 public:
  /// `bucket_ns`-wide buckets, `buckets` of them (window = product).
  explicit SlidingWindow(std::uint64_t bucket_ns = 1000000000ull,
                         std::size_t buckets = 60);

  /// Record one completed request at time `now_ns`: its total latency,
  /// how many design points it carried, and how many of those were served
  /// without a fresh simulation (hit + alias + follower).
  void record(std::uint64_t now_ns, std::uint64_t latency_ns,
              std::uint64_t points, std::uint64_t points_avoided);

  struct Summary {
    std::uint64_t requests = 0;
    std::uint64_t points = 0;
    std::uint64_t points_avoided = 0;
    /// Requests per second over the covered span (0 when empty).
    double requests_per_sec = 0;
    /// points_avoided / points (0 when no points).
    double hit_ratio = 0;
    /// Latency quantiles in milliseconds (bin midpoints; 0 when empty).
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    /// Nanoseconds of window actually covered by live buckets.
    std::uint64_t span_ns = 0;
  };

  /// Merge every bucket still inside the window ending at `now_ns`.
  Summary summarize(std::uint64_t now_ns) const;

  std::uint64_t bucket_ns() const { return bucket_ns_; }
  std::size_t bucket_count() const { return ring_.size(); }

 private:
  /// Power-of-two latency bins: bin b holds values v with bit_width(v)==b
  /// (v=0 -> bin 0). 64+1 bins cover the full uint64 range.
  static constexpr std::size_t kLatencyBins = 65;

  static constexpr std::uint64_t kDeadEpoch = ~0ull;

  struct Bucket {
    std::uint64_t epoch = kDeadEpoch;
    std::uint64_t requests = 0;
    std::uint64_t points = 0;
    std::uint64_t points_avoided = 0;
    std::uint64_t latency_bins[kLatencyBins] = {};
  };

  static std::size_t latency_bin(std::uint64_t ns);
  static double bin_midpoint_ns(std::size_t bin);

  Bucket& slot(std::uint64_t epoch) { return ring_[epoch % ring_.size()]; }

  std::uint64_t bucket_ns_;
  std::vector<Bucket> ring_;
};

}  // namespace ara::obs
