// The single sanctioned host wall-clock read in src/ (see clock.h).
// ara_lint's no-wall-clock rule exempts exactly this file by path; any
// other steady_clock use in src/ is a lint finding.
#include "obs/clock.h"

#include <chrono>

namespace ara::obs {

namespace {

class HostClock final : public MonotonicClock {
 public:
  std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

MonotonicClock& MonotonicClock::host() {
  static HostClock clock;
  return clock;
}

}  // namespace ara::obs
