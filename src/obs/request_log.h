// Structured JSONL request log for the serve path.
//
// One RFC 8259-valid JSON object per completed request, appended to a
// file: trace id, client, workload, per-phase durations (exact integer
// nanoseconds plus a human-friendly total in ms), per-point outcome
// counts, the typed error code, and a "slow" flag when the request's
// total latency crosses the configured threshold. The log is bounded by
// size-based rotation: when appending would push the file past
// max_bytes, the current file is renamed to "<path>.1" (replacing any
// previous rotation) and a fresh file is started — at most ~2x max_bytes
// on disk, ever.
//
// Threading: append() is internally locked (its own mutex — callers hold
// no server lock while writing, so a slow disk never blocks admission).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/span.h"

namespace ara::obs {

class RequestLog {
 public:
  struct Options {
    /// Log file path; parent directory must exist.
    std::string path;
    /// Rotate when an append would push the file past this many bytes.
    std::uint64_t max_bytes = 8u << 20;
    /// Mark requests slower than this (admission -> response, in
    /// milliseconds) with "slow":true; 0 never marks.
    std::uint64_t slow_ms = 0;
  };

  explicit RequestLog(Options opts);

  /// False when the log file could not be opened (append() is then a
  /// no-op; the daemon reports this once at startup and keeps serving).
  bool ok() const ARA_EXCLUDES(mu_);

  /// Serialize `trace` as one JSONL line and append it, rotating first if
  /// needed. Returns false when the write failed.
  bool append(const RequestTrace& trace) ARA_EXCLUDES(mu_);

  /// Lines appended over the log's lifetime (across rotations).
  std::uint64_t lines() const ARA_EXCLUDES(mu_);
  /// Rotations performed.
  std::uint64_t rotations() const ARA_EXCLUDES(mu_);

  const std::string& path() const { return opts_.path; }

  /// One trace as its JSONL line (no trailing newline). Exposed for tests
  /// and for tooling that wants the schema without a file.
  static std::string format_line(const RequestTrace& trace,
                                 std::uint64_t slow_ms);

 private:
  const Options opts_;
  mutable common::Mutex mu_;
  std::ofstream out_ ARA_GUARDED_BY(mu_);
  std::uint64_t bytes_ ARA_GUARDED_BY(mu_) = 0;
  std::uint64_t lines_ ARA_GUARDED_BY(mu_) = 0;
  std::uint64_t rotations_ ARA_GUARDED_BY(mu_) = 0;
};

}  // namespace ara::obs
