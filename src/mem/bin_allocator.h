// BinAllocator: a Buffer-in-NUCA–style allocator (paper Sec. 7 / BiN [7]):
// accelerator buffers are pinned into the shared NUCA L2 banks so streaming
// DMA is served on chip instead of thrashing to DRAM, with a per-bank
// capacity budget so pinned buffers cannot monopolize a bank.
//
// The allocator hands out pin reservations block-by-block across the banks
// that own each address (the same interleaving the tag path uses), tracks
// per-bank budgets, and releases reservations on free. MemorySystem
// consults it on every access: a pinned block is an unconditional hit at
// its bank.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace ara::mem {

struct BinConfig {
  /// Fraction of each bank's capacity available for pinned buffers.
  double max_pinned_fraction = 0.5;
};

class BinAllocator {
 public:
  /// `bank_capacities[i]` = bytes of bank i.
  BinAllocator(const BinConfig& config, std::vector<Bytes> bank_capacities);

  /// Try to pin every block of [addr, addr+bytes). Blocks whose owning
  /// bank is out of budget stay unpinned. Returns the bytes pinned.
  Bytes pin_range(Addr addr, Bytes bytes);

  /// Release every pinned block of [addr, addr+bytes).
  void unpin_range(Addr addr, Bytes bytes);

  /// Is the block containing `addr` pinned?
  bool is_pinned(Addr addr) const;

  Bytes pinned_bytes(std::size_t bank) const {
    return pinned_per_bank_[bank] * kBlockBytes;
  }
  Bytes total_pinned_bytes() const;
  std::uint64_t pin_rejections() const { return rejections_; }

 private:
  std::size_t bank_of(Addr block_addr) const {
    return static_cast<std::size_t>(block_addr) % pinned_per_bank_.size();
  }

  BinConfig config_;
  std::vector<Bytes> budget_blocks_;     // per bank
  std::vector<Bytes> pinned_per_bank_;   // blocks currently pinned
  std::unordered_set<Addr> pinned_;      // block addresses
  std::uint64_t rejections_ = 0;
};

}  // namespace ara::mem
