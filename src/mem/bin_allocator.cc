#include "mem/bin_allocator.h"

#include <numeric>

#include "common/config_error.h"

namespace ara::mem {

BinAllocator::BinAllocator(const BinConfig& config,
                           std::vector<Bytes> bank_capacities)
    : config_(config) {
  config_check(!bank_capacities.empty(), "BiN needs at least one bank");
  config_check(config.max_pinned_fraction > 0.0 &&
                   config.max_pinned_fraction <= 1.0,
               "BiN pinned fraction must be in (0, 1]");
  budget_blocks_.reserve(bank_capacities.size());
  for (Bytes cap : bank_capacities) {
    budget_blocks_.push_back(static_cast<Bytes>(
        static_cast<double>(cap / kBlockBytes) * config.max_pinned_fraction));
  }
  pinned_per_bank_.assign(bank_capacities.size(), 0);
}

Bytes BinAllocator::pin_range(Addr addr, Bytes bytes) {
  if (bytes == 0) return 0;
  Bytes pinned = 0;
  const Addr first = addr / kBlockBytes;
  const Addr last = (addr + bytes - 1) / kBlockBytes;
  for (Addr b = first; b <= last; ++b) {
    if (pinned_.count(b) != 0) continue;  // already pinned
    const std::size_t bank = bank_of(b);
    if (pinned_per_bank_[bank] >= budget_blocks_[bank]) {
      ++rejections_;
      continue;
    }
    pinned_.insert(b);
    ++pinned_per_bank_[bank];
    pinned += kBlockBytes;
  }
  return pinned;
}

void BinAllocator::unpin_range(Addr addr, Bytes bytes) {
  if (bytes == 0) return;
  const Addr first = addr / kBlockBytes;
  const Addr last = (addr + bytes - 1) / kBlockBytes;
  for (Addr b = first; b <= last; ++b) {
    auto it = pinned_.find(b);
    if (it == pinned_.end()) continue;
    pinned_.erase(it);
    --pinned_per_bank_[bank_of(b)];
  }
}

bool BinAllocator::is_pinned(Addr addr) const {
  return pinned_.count(addr / kBlockBytes) != 0;
}

Bytes BinAllocator::total_pinned_bytes() const {
  Bytes blocks = std::accumulate(pinned_per_bank_.begin(),
                                 pinned_per_bank_.end(), Bytes{0});
  return blocks * kBlockBytes;
}

}  // namespace ara::mem
