// MemorySystem: the shared memory hierarchy seen by cores and islands.
//
// Owns the L2 banks and memory controllers, knows where they sit on the
// mesh, interleaves addresses across banks/controllers, and provides
// whole-transfer read/write operations that DMA engines call. Also provides
// the (trivial) physical address allocator workloads use to lay out their
// buffers — the simulator moves metadata, not real data.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/bin_allocator.h"
#include "mem/l2_cache.h"
#include "mem/memory_controller.h"
#include "noc/mesh.h"
#include "sim/stats.h"

namespace ara::mem {

struct MemorySystemConfig {
  std::uint32_t num_memory_controllers = 4;  // paper Sec. 4
  std::uint32_t num_l2_banks = 16;
  MemoryControllerConfig mc;
  L2BankConfig l2;
  /// Size of the request control message (header flit) on the NoC.
  Bytes control_bytes = 16;
  /// DRAM page interleave across controllers.
  Bytes mc_interleave = 4096;
  /// Ablation: route accelerator DMA straight to the memory controllers,
  /// bypassing the shared L2 banks (the organization BiN [7] argues
  /// against).
  bool l2_bypass = false;
  /// BiN-style buffer pinning in the NUCA L2 (paper Sec. 7 / [7]): when
  /// enabled, System pins workload buffers via pin_range and pinned blocks
  /// hit unconditionally at their bank.
  bool bin_pinning = false;
  BinConfig bin;
};

class MemorySystem {
 public:
  /// `l2_nodes` / `mc_nodes` give each bank/controller's mesh position;
  /// their sizes must match the config counts.
  MemorySystem(noc::Mesh& mesh, const MemorySystemConfig& config,
               std::vector<NodeId> l2_nodes, std::vector<NodeId> mc_nodes);

  /// Allocate a buffer in the simulated physical address space.
  Addr allocate(Bytes size);

  /// Read `bytes` starting at `addr` into a requester at mesh node `src`.
  /// Models, per block: request message to the owning L2 bank, tag lookup,
  /// miss path over the NoC to the owning controller and back, and the data
  /// response back to `src`. Returns the arrival tick of the last block.
  Tick read(Tick ready_at, NodeId src, Addr addr, Bytes bytes);

  /// Write `bytes` from `src` to `addr` (write-allocate at L2; misses and
  /// evictions cost a DRAM access).
  Tick write(Tick ready_at, NodeId src, Addr addr, Bytes bytes);

  // --- observability ---
  std::size_t l2_bank_count() const { return l2_banks_.size(); }
  const L2Bank& l2_bank(std::size_t i) const { return *l2_banks_[i]; }
  const MemoryController& controller(std::size_t i) const { return *mcs_[i]; }
  std::size_t controller_count() const { return mcs_.size(); }
  double l2_hit_rate() const;
  Bytes dram_bytes() const;

  /// Install live instrumentation into `reg`: whole-transfer
  /// "mem.read_latency"/"mem.write_latency" histograms plus per-controller
  /// "mem.mc.<i>.read_latency"/"mem.mc.<i>.write_latency" (queueing + DRAM
  /// access per block).
  void set_stats(sim::StatRegistry& reg);

  /// Roll component totals (L2 hits/misses per bank, controller traffic)
  /// into `reg` under "mem.*" (end-of-run snapshot).
  void snapshot_stats(sim::StatRegistry& reg) const;

  /// Drop all cached state (between experiment runs).
  void flush_caches();

  /// --- BiN buffer pinning ---
  /// Pin [addr, addr+bytes) into the owning banks; returns bytes pinned
  /// (budget-limited). No-op (0) unless bin_pinning is enabled.
  Bytes pin_buffer(Addr addr, Bytes bytes);
  void unpin_buffer(Addr addr, Bytes bytes);
  const BinAllocator& bin() const { return *bin_; }

  const MemorySystemConfig& config() const { return config_; }

 private:
  std::size_t bank_of(Addr block_addr) const {
    return static_cast<std::size_t>(block_addr) % l2_banks_.size();
  }
  std::size_t mc_of(Addr addr) const {
    return static_cast<std::size_t>(addr / config_.mc_interleave) %
           mcs_.size();
  }
  Tick access_block(Tick ready_at, NodeId src, Addr block_start,
                    bool is_write);

  noc::Mesh& mesh_;
  MemorySystemConfig config_;
  std::vector<std::unique_ptr<L2Bank>> l2_banks_;
  std::vector<std::unique_ptr<MemoryController>> mcs_;
  std::vector<NodeId> l2_nodes_;
  std::vector<NodeId> mc_nodes_;
  std::unique_ptr<BinAllocator> bin_;
  Addr next_addr_ = 0x1000;
  /// Live instrumentation (null until set_stats). mc_latency_h_[i][w] is
  /// controller i's histogram, w = 1 for writes.
  sim::Histogram* read_latency_h_ = nullptr;
  sim::Histogram* write_latency_h_ = nullptr;
  std::vector<std::array<sim::Histogram*, 2>> mc_latency_h_;
};

}  // namespace ara::mem
