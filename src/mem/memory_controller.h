// Off-chip memory controller model: a bandwidth-limited channel plus a
// fixed average access latency. The paper's evaluated system uses four
// controllers with an average 180-cycle latency at 10 GB/s each (Sec. 4).
#pragma once

#include <string>

#include "common/types.h"
#include "sim/shared_link.h"

namespace ara::mem {

struct MemoryControllerConfig {
  double bandwidth_bytes_per_cycle = 10.0;  // 10 GB/s at 1 GHz
  Tick avg_latency = 180;
};

class MemoryController {
 public:
  MemoryController(std::string name, const MemoryControllerConfig& config);

  /// Serve `bytes` of DRAM traffic; returns the completion tick.
  Tick access(Tick ready_at, Bytes bytes);

  Bytes total_bytes() const { return channel_.total_bytes(); }
  std::uint64_t accesses() const { return channel_.transfers(); }
  double utilization(Tick elapsed) const {
    return channel_.utilization(elapsed);
  }
  const std::string& name() const { return channel_.name(); }

 private:
  sim::SharedLink channel_;
};

}  // namespace ara::mem
