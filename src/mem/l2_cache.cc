#include "mem/l2_cache.h"

#include <utility>

#include "common/config_error.h"

namespace ara::mem {

L2Bank::L2Bank(std::string name, const L2BankConfig& config)
    : config_(config),
      num_sets_(0),
      port_(std::move(name), config.port_bytes_per_cycle, config.hit_latency) {
  config_check(config.block_bytes > 0, "L2 block size must be positive");
  config_check(config.associativity > 0, "L2 associativity must be positive");
  const Bytes blocks = config.capacity / config.block_bytes;
  config_check(blocks >= config.associativity,
               "L2 bank too small for its associativity");
  num_sets_ = static_cast<std::size_t>(blocks / config.associativity);
  ways_.assign(num_sets_ * config.associativity, Way{});
}

L2Bank::AccessResult L2Bank::access(Tick ready_at, Addr addr, bool is_write) {
  const Addr block_addr = addr / config_.block_bytes;
  const std::size_t set = set_index(block_addr);
  Way* base = &ways_[set * config_.associativity];
  ++stamp_;

  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == block_addr) {
      way.lru = stamp_;
      ++hits_;
      return {port_.submit(ready_at, config_.block_bytes), true};
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }

  // Miss: install (allocate on both reads and writes; DMA writes are
  // streaming stores that the BiN-style buffering keeps on chip).
  victim->valid = true;
  victim->tag = block_addr;
  victim->lru = stamp_;
  ++misses_;
  (void)is_write;
  return {port_.submit(ready_at, config_.block_bytes), false};
}

Tick L2Bank::access_pinned(Tick ready_at) {
  ++hits_;
  return port_.submit(ready_at, config_.block_bytes);
}

void L2Bank::flush() {
  for (auto& way : ways_) way = Way{};
}

}  // namespace ara::mem
