// Shared L2 cache bank: a real set-associative LRU tag array plus a
// bandwidth-limited port. Accelerator DMA traffic flows through the shared
// L2 banks on the NoC (the ARC/CHARM organization; cf. BiN [7]), so reuse
// between kernel invocations is captured by actual tag hits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/shared_link.h"

namespace ara::mem {

struct L2BankConfig {
  Bytes capacity = 384 * 1024;  // per-bank; 16 banks ~= 6 MB total
  std::uint32_t associativity = 8;
  Bytes block_bytes = kBlockBytes;
  double port_bytes_per_cycle = 32.0;
  Tick hit_latency = 12;
};

class L2Bank {
 public:
  L2Bank(std::string name, const L2BankConfig& config);

  /// Tag lookup + port occupancy for one block. Returns {completion tick of
  /// the bank's part, hit?}. On a miss the caller forwards to a memory
  /// controller and the block is installed (allocate-on-miss, LRU victim).
  struct AccessResult {
    Tick bank_done;
    bool hit;
  };
  AccessResult access(Tick ready_at, Addr addr, bool is_write);

  /// Serve a BiN-pinned block: unconditional hit, port occupancy only.
  Tick access_pinned(Tick ready_at);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }
  std::uint64_t accesses() const { return hits_ + misses_; }
  const std::string& name() const { return port_.name(); }
  const L2BankConfig& config() const { return config_; }

  /// Drop all cached blocks (used between independent experiment runs).
  void flush();

 private:
  struct Way {
    Addr tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  // last-use stamp
  };

  std::size_t set_index(Addr block_addr) const {
    return static_cast<std::size_t>(block_addr) % num_sets_;
  }

  L2BankConfig config_;
  std::size_t num_sets_;
  std::vector<Way> ways_;  // num_sets_ * associativity, row-major by set
  sim::SharedLink port_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stamp_ = 0;
};

}  // namespace ara::mem
