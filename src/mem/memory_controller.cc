#include "mem/memory_controller.h"

#include <utility>

namespace ara::mem {

MemoryController::MemoryController(std::string name,
                                   const MemoryControllerConfig& config)
    : channel_(std::move(name), config.bandwidth_bytes_per_cycle,
               config.avg_latency) {}

Tick MemoryController::access(Tick ready_at, Bytes bytes) {
  return channel_.submit(ready_at, bytes);
}

}  // namespace ara::mem
