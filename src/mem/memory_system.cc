#include "mem/memory_system.h"

#include <algorithm>

#include "common/config_error.h"

namespace ara::mem {

MemorySystem::MemorySystem(noc::Mesh& mesh, const MemorySystemConfig& config,
                           std::vector<NodeId> l2_nodes,
                           std::vector<NodeId> mc_nodes)
    : mesh_(mesh),
      config_(config),
      l2_nodes_(std::move(l2_nodes)),
      mc_nodes_(std::move(mc_nodes)) {
  config_check(config.num_l2_banks > 0, "need at least one L2 bank");
  config_check(config.num_memory_controllers > 0,
               "need at least one memory controller");
  config_check(l2_nodes_.size() == config.num_l2_banks,
               "L2 node placement size mismatch");
  config_check(mc_nodes_.size() == config.num_memory_controllers,
               "MC node placement size mismatch");
  for (std::uint32_t i = 0; i < config.num_l2_banks; ++i) {
    l2_banks_.push_back(
        std::make_unique<L2Bank>("mem.l2b" + std::to_string(i), config.l2));
  }
  for (std::uint32_t i = 0; i < config.num_memory_controllers; ++i) {
    mcs_.push_back(std::make_unique<MemoryController>(
        "mem.mc" + std::to_string(i), config.mc));
  }
  std::vector<Bytes> capacities(l2_banks_.size(), config.l2.capacity);
  bin_ = std::make_unique<BinAllocator>(config.bin, std::move(capacities));
}

Bytes MemorySystem::pin_buffer(Addr addr, Bytes bytes) {
  if (!config_.bin_pinning) return 0;
  return bin_->pin_range(addr, bytes);
}

void MemorySystem::unpin_buffer(Addr addr, Bytes bytes) {
  bin_->unpin_range(addr, bytes);
}

Addr MemorySystem::allocate(Bytes size) {
  const Addr result = next_addr_;
  next_addr_ += ceil_div<Bytes>(size, kBlockBytes) * kBlockBytes;
  return result;
}

Tick MemorySystem::access_block(Tick ready_at, NodeId src, Addr block_start,
                                bool is_write) {
  if (config_.l2_bypass) {
    // Straight to the owning controller over the NoC.
    const std::size_t mc_idx = mc_of(block_start);
    const NodeId mc_node = mc_nodes_[mc_idx];
    Tick t = mesh_.transfer(ready_at, src, mc_node,
                            is_write ? kBlockBytes : config_.control_bytes);
    const Tick mc_start = t;
    t = mcs_[mc_idx]->access(t, kBlockBytes);
    if (!mc_latency_h_.empty()) {
      mc_latency_h_[mc_idx][is_write ? 1 : 0]->record(t - mc_start);
    }
    if (!is_write) t = mesh_.transfer(t, mc_node, src, kBlockBytes);
    return t;
  }
  const Addr block_addr = block_start / kBlockBytes;
  const std::size_t bank_idx = bank_of(block_addr);
  L2Bank& bank = *l2_banks_[bank_idx];
  const NodeId bank_node = l2_nodes_[bank_idx];

  // BiN-pinned blocks are guaranteed residents of their bank: serve as a
  // hit without touching the tag array.
  if (config_.bin_pinning && bin_->is_pinned(block_start)) {
    Tick t = mesh_.transfer(ready_at, src, bank_node,
                            is_write ? kBlockBytes : config_.control_bytes);
    t = bank.access_pinned(t);
    if (!is_write) t = mesh_.transfer(t, bank_node, src, kBlockBytes);
    return t;
  }
  // Bank-local address: strip the interleave bits so a bank's blocks spread
  // over all of its sets (block % banks selects the bank, so without this
  // every resident block would land in the same 1/banks slice of sets).
  const Addr bank_local = (block_addr / l2_banks_.size()) * kBlockBytes;

  Tick t = ready_at;
  if (is_write) {
    // Data travels with the request on a write.
    t = mesh_.transfer(t, src, bank_node, kBlockBytes);
  } else {
    t = mesh_.transfer(t, src, bank_node, config_.control_bytes);
  }

  const auto result = bank.access(t, bank_local, is_write);
  t = result.bank_done;

  if (!result.hit) {
    // Miss path: request to the owning controller, DRAM access, fill back.
    const std::size_t mc_idx = mc_of(block_start);
    const NodeId mc_node = mc_nodes_[mc_idx];
    t = mesh_.transfer(t, bank_node, mc_node,
                       is_write ? kBlockBytes : config_.control_bytes);
    const Tick mc_start = t;
    t = mcs_[mc_idx]->access(t, kBlockBytes);
    if (!mc_latency_h_.empty()) {
      mc_latency_h_[mc_idx][is_write ? 1 : 0]->record(t - mc_start);
    }
    if (!is_write) {
      t = mesh_.transfer(t, mc_node, bank_node, kBlockBytes);
    }
  }

  if (!is_write) {
    // Data response to the requester.
    t = mesh_.transfer(t, bank_node, src, kBlockBytes);
  }
  return t;
}

Tick MemorySystem::read(Tick ready_at, NodeId src, Addr addr, Bytes bytes) {
  if (bytes == 0) return ready_at;
  Tick done = ready_at;
  const Addr first = addr / kBlockBytes;
  const Addr last = (addr + bytes - 1) / kBlockBytes;
  for (Addr b = first; b <= last; ++b) {
    done = std::max(done, access_block(ready_at, src, b * kBlockBytes, false));
  }
  if (read_latency_h_ != nullptr) read_latency_h_->record(done - ready_at);
  return done;
}

Tick MemorySystem::write(Tick ready_at, NodeId src, Addr addr, Bytes bytes) {
  if (bytes == 0) return ready_at;
  Tick done = ready_at;
  const Addr first = addr / kBlockBytes;
  const Addr last = (addr + bytes - 1) / kBlockBytes;
  for (Addr b = first; b <= last; ++b) {
    done = std::max(done, access_block(ready_at, src, b * kBlockBytes, true));
  }
  if (write_latency_h_ != nullptr) write_latency_h_->record(done - ready_at);
  return done;
}

void MemorySystem::set_stats(sim::StatRegistry& reg) {
  read_latency_h_ = &reg.histogram("mem.read_latency",
                                   /*bucket_width=*/64, /*buckets=*/128);
  write_latency_h_ = &reg.histogram("mem.write_latency",
                                    /*bucket_width=*/64, /*buckets=*/128);
  mc_latency_h_.assign(mcs_.size(), {nullptr, nullptr});
  for (std::size_t i = 0; i < mcs_.size(); ++i) {
    const std::string p = "mem.mc." + std::to_string(i) + ".";
    mc_latency_h_[i][0] = &reg.histogram(p + "read_latency",
                                         /*bucket_width=*/32, /*buckets=*/64);
    mc_latency_h_[i][1] = &reg.histogram(p + "write_latency",
                                         /*bucket_width=*/32, /*buckets=*/64);
  }
}

void MemorySystem::snapshot_stats(sim::StatRegistry& reg) const {
  std::uint64_t hits = 0, misses = 0;
  for (std::size_t i = 0; i < l2_banks_.size(); ++i) {
    hits += l2_banks_[i]->hits();
    misses += l2_banks_[i]->misses();
    reg.set_counter("mem.l2.bank." + std::to_string(i) + ".accesses",
                    l2_banks_[i]->accesses());
  }
  reg.set_counter("mem.l2.hits", hits);
  reg.set_counter("mem.l2.misses", misses);
  for (std::size_t i = 0; i < mcs_.size(); ++i) {
    const std::string p = "mem.mc." + std::to_string(i) + ".";
    reg.set_counter(p + "bytes", mcs_[i]->total_bytes());
    reg.set_counter(p + "accesses", mcs_[i]->accesses());
  }
  reg.set_counter("mem.dram_bytes", dram_bytes());
}

double MemorySystem::l2_hit_rate() const {
  std::uint64_t hits = 0, total = 0;
  for (const auto& b : l2_banks_) {
    hits += b->hits();
    total += b->accesses();
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

Bytes MemorySystem::dram_bytes() const {
  Bytes sum = 0;
  for (const auto& mc : mcs_) sum += mc->total_bytes();
  return sum;
}

void MemorySystem::flush_caches() {
  for (auto& b : l2_banks_) b->flush();
}

}  // namespace ara::mem
