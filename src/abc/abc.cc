#include "abc/abc.h"

#include <algorithm>
#include <cmath>

#include "common/config_error.h"
#include "common/units.h"

namespace ara::abc {

using dataflow::DfgNode;

Abc::Abc(sim::Simulator& sim, mem::MemorySystem& mem,
         std::vector<island::Island*> islands, AbcConfig config)
    : sim_(sim), mem_(mem), islands_(std::move(islands)), config_(config) {
  config_check(!islands_.empty(), "ABC needs at least one island");
  active_.resize(islands_.size());
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    active_[i].assign(islands_[i]->num_abbs(), false);
  }
  cursor_.assign(islands_.size(), 0);
  offline_.assign(islands_.size(), false);
  const std::size_t instances = config_.mono_instances == 0
                                    ? islands_.size()
                                    : config_.mono_instances;
  mono_free_at_.assign(instances, 0);
  mono_busy_.assign(instances, 0);
}

JobId Abc::submit_job(const dataflow::Dfg* dfg, Addr in_base, Addr out_base,
                      Tick start_at, JobDoneFn on_done) {
  config_check(dfg != nullptr && dfg->finalized() && !dfg->empty(),
               "ABC needs a finalized, non-empty DFG");
  const JobId id = next_job_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->dfg = dfg;
  job->in_base = in_base;
  job->out_base = out_base;
  job->on_done = std::move(on_done);
  job->tasks.resize(dfg->size());
  job->node_in_addr.resize(dfg->size());
  job->node_out_addr.resize(dfg->size());
  Addr in_off = 0, out_off = 0;
  for (TaskId t = 0; t < dfg->size(); ++t) {
    const DfgNode& n = dfg->node(t);
    job->node_in_addr[t] = in_base + in_off;
    job->node_out_addr[t] = out_base + out_off;
    in_off += n.mem_in_bytes;
    out_off += n.mem_out_bytes;
    job->tasks[t].preds_left = static_cast<std::uint32_t>(n.preds.size());
    job->tasks[t].consumers_unchained =
        static_cast<std::uint32_t>(n.succs.size());
  }
  jobs_.push_back(std::move(job));

  if (config_.mode == ExecutionMode::kMonolithic) {
    sim_.schedule_at(
        std::max(start_at, sim_.now()),
        [this, id, start_at] { run_monolithic(id, start_at); },
        sim::EventKind::kJobAdmit);
    return id;
  }

  jobs_.back()->atomic = !config_.force_per_task && fits_inventory(*dfg);
  sim_.schedule_at(
      std::max(start_at, sim_.now()),
      [this, id] {
        Job& j = *jobs_[id];
        if (j.atomic) {
          admit_queue_.push_back(id);
          try_start_jobs();
          if (!admit_queue_.empty() && admit_queue_.back() == id) {
            ++tasks_queued_;  // composition had to wait for resources
          }
          return;
        }
        for (TaskId t = 0; t < j.dfg->size(); ++t) {
          if (j.tasks[t].preds_left == 0) on_task_ready(id, t);
        }
      },
      sim::EventKind::kJobAdmit);
  return id;
}

bool Abc::fits_inventory(const dataflow::Dfg& dfg) const {
  // Demand per (kind, fabric) vs the chip's total block inventory.
  std::array<std::uint32_t, abb::kNumAbbKinds> demand{};
  std::uint32_t fabric_demand = 0;
  for (const auto& n : dfg.nodes()) {
    if (n.needs_fabric) {
      ++fabric_demand;
    } else {
      ++demand[static_cast<std::size_t>(n.kind)];
    }
  }
  std::array<std::uint32_t, abb::kNumAbbKinds> have{};
  std::uint32_t fabric_have = 0;
  for (IslandId i = 0; i < islands_.size(); ++i) {
    if (offline_[i]) continue;
    const auto* isl = islands_[i];
    for (AbbId a = 0; a < isl->num_abbs(); ++a) {
      const auto& e = isl->engine(a);
      if (e.is_fabric()) {
        ++fabric_have;
      } else {
        ++have[static_cast<std::size_t>(e.kind())];
      }
    }
  }
  for (std::size_t k = 0; k < abb::kNumAbbKinds; ++k) {
    if (demand[k] > have[k]) return false;
  }
  if (fabric_demand > fabric_have) return false;
  // Raw counts fit; with SPM sharing the neighbour constraint can still
  // make composition impossible (adjacent same-kind blocks exclude each
  // other), so dry-run the allocator on an empty chip.
  bool sharing_anywhere = false;
  for (const auto* isl : islands_) {
    sharing_anywhere |= isl->config().spm_sharing;
  }
  if (sharing_anywhere && config_.enforce_sharing_constraint) {
    return composable_on_empty_chip(dfg);
  }
  return true;
}

void Abc::set_island_offline(IslandId isl, bool offline) {
  config_check(isl < islands_.size(), "island id out of range");
  offline_[isl] = offline;
  if (!offline) {
    sim_.schedule_at(
        sim_.now(),
        [this] {
          drain_pending();
          try_start_jobs();
        },
        sim::EventKind::kSlotRelease);
  }
}

bool Abc::composable_on_empty_chip(const dataflow::Dfg& dfg) const {
  // Scratch allocation state mirroring slot_allocatable()'s rules.
  std::vector<std::vector<bool>> scratch(islands_.size());
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    scratch[i].assign(islands_[i]->num_abbs(), false);
  }
  auto allocatable = [&](IslandId isl, AbbId a) {
    if (offline_[isl] || scratch[isl][a]) return false;
    if (islands_[isl]->config().spm_sharing) {
      if (a > 0 && scratch[isl][a - 1]) return false;
      if (a + 1 < scratch[isl].size() && scratch[isl][a + 1]) return false;
    }
    return true;
  };
  for (TaskId t : dfg.topo_order()) {
    const auto& node = dfg.node(t);
    bool placed = false;
    for (IslandId isl = 0; isl < islands_.size() && !placed; ++isl) {
      for (AbbId a = 0; a < islands_[isl]->num_abbs(); ++a) {
        if (slot_matches(isl, a, node) && allocatable(isl, a)) {
          scratch[isl][a] = true;
          placed = true;
          break;
        }
      }
    }
    if (!placed) return false;
  }
  return true;
}

bool Abc::assign_all(Job& j) {
  j.assigned.assign(j.dfg->size(), Slot{});
  std::vector<Slot> taken;
  taken.reserve(j.dfg->size());

  auto rollback = [&] {
    for (const Slot& s : taken) active_[s.island][s.abb] = false;
    j.assigned.clear();
  };

  for (TaskId t : j.dfg->topo_order()) {
    const auto& node = j.dfg->node(t);
    Slot slot{};
    // Chaining locality: co-locate with the first producer's slot.
    bool placed = false;
    for (TaskId p : node.preds) {
      const Slot& ps = j.assigned[p];
      if (ps.island == kInvalidId) continue;
      placed = pick_slot_in_island(ps.island, node, slot);
      break;  // only the first placed producer drives locality
    }
    if (!placed && !find_slot(node, j, slot)) {
      rollback();
      return false;
    }
    active_[slot.island][slot.abb] = true;
    taken.push_back(slot);
    j.assigned[t] = slot;
  }
  return true;
}

void Abc::try_start_jobs() {
  while (!admit_queue_.empty()) {
    const JobId id = admit_queue_.front();
    Job& j = *jobs_[id];
    if (!assign_all(j)) {
      if (composable_on_empty_chip(*j.dfg)) {
        return;  // FIFO: head-of-line job waits for releases
      }
      // The chip shrank under this job (island offlined): demote to the
      // per-task fallback so it still completes.
      admit_queue_.pop_front();
      j.atomic = false;
      for (TaskId t = 0; t < j.dfg->size(); ++t) {
        if (j.tasks[t].preds_left == 0 &&
            j.tasks[t].phase == TaskState::Phase::kWaiting) {
          on_task_ready(id, t);
        }
      }
      continue;
    }
    admit_queue_.pop_front();
    for (TaskId t = 0; t < j.dfg->size(); ++t) {
      if (j.tasks[t].preds_left == 0) start_task(id, t, j.assigned[t]);
    }
  }
}

// ------------------------------------------------------------- placement

bool Abc::slot_matches(IslandId isl, AbbId a, const DfgNode& node) const {
  const auto& e = islands_[isl]->engine(a);
  if (node.needs_fabric) return e.is_fabric();
  return !e.is_fabric() && e.kind() == node.kind;
}

bool Abc::slot_allocatable(IslandId isl, AbbId a) const {
  if (offline_[isl] || active_[isl][a]) return false;
  if (config_.enforce_sharing_constraint &&
      islands_[isl]->config().spm_sharing) {
    // Neighbour SPM sharing: an active neighbour owns part of this slot's
    // banks (Sec. 5.1: allocation "renders other near-by ABBs unusable").
    if (a > 0 && active_[isl][a - 1]) return false;
    if (a + 1 < active_[isl].size() && active_[isl][a + 1]) return false;
  }
  return true;
}

std::uint32_t Abc::free_matching_count(IslandId isl,
                                       const DfgNode& node) const {
  std::uint32_t count = 0;
  for (AbbId a = 0; a < islands_[isl]->num_abbs(); ++a) {
    if (slot_matches(isl, a, node) && slot_allocatable(isl, a)) ++count;
  }
  return count;
}

bool Abc::pick_slot_in_island(IslandId isl, const DfgNode& node,
                              Slot& out) const {
  const AbbId n = islands_[isl]->num_abbs();
  for (AbbId i = 0; i < n; ++i) {
    const AbbId a = (cursor_[isl] + i) % n;
    if (slot_matches(isl, a, node) && slot_allocatable(isl, a)) {
      out = Slot{isl, a};
      cursor_[isl] = (a + 1) % n;
      return true;
    }
  }
  return false;
}

bool Abc::find_slot(const DfgNode& node, const Job& job, Slot& out) const {
  auto pick_in_island = [&](IslandId isl) -> bool {
    return pick_slot_in_island(isl, node, out);
  };

  // Chaining locality: prefer the island of the first unspilled producer.
  for (TaskId p : node.preds) {
    const TaskState& ps = job.tasks[p];
    if (!ps.spilled && ps.island != kInvalidId) {
      if (pick_in_island(ps.island)) return true;
      break;  // preferred island full; fall through to load balancing
    }
  }

  // Load balancing: island with the most free matching ABBs.
  IslandId best = kInvalidId;
  std::uint32_t best_count = 0;
  for (IslandId isl = 0; isl < islands_.size(); ++isl) {
    const std::uint32_t c = free_matching_count(isl, node);
    if (c > best_count) {
      best = isl;
      best_count = c;
    }
  }
  if (best == kInvalidId) return false;
  return pick_in_island(best);
}

void Abc::release(IslandId isl, AbbId a, Tick at) {
  sim_.schedule_at(
      std::max(at, sim_.now()),
      [this, isl, a] {
        active_[isl][a] = false;
        drain_pending();
        try_start_jobs();
      },
      sim::EventKind::kSlotRelease);
}

// --------------------------------------------------------- task lifecycle

void Abc::on_task_ready(JobId job, TaskId task) {
  Job& j = *jobs_[job];
  if (j.atomic) {
    // Slot reserved at composition time.
    start_task(job, task, j.assigned[task]);
    return;
  }
  Slot slot{};
  if (find_slot(j.dfg->node(task), j, slot)) {
    start_task(job, task, slot);
    return;
  }
  // No resources: queue the consumer and let its producers spill so their
  // ABBs (and SPM contents) are not pinned indefinitely.
  j.tasks[task].phase = TaskState::Phase::kPending;
  pending_.push_back({job, task});
  ++tasks_queued_;
  for (TaskId p : j.dfg->node(task).preds) spill_producer(j, p);
}

void Abc::spill_producer(Job& j, TaskId producer) {
  TaskState& ps = j.tasks[producer];
  if (ps.spilled || ps.consumers_unchained == 0) return;
  ps.spilled = true;
  if (trace_ != nullptr) {
    trace_->record_instant("spill j" + std::to_string(j.id), ps.island,
                           ps.slot, sim_.now(), "spill");
  }
  chains_spilled_ += ps.consumers_unchained;
  ps.consumers_unchained = 0;

  // Spill size: consumers of this producer receive chain_in_bytes each from
  // it; the stored footprint is one copy.
  Bytes bytes = 0;
  for (TaskId s : j.dfg->node(producer).succs) {
    bytes = std::max(bytes, j.dfg->node(s).chain_in_bytes);
  }
  if (bytes == 0) bytes = kBlockBytes;
  ps.spill_addr = mem_.allocate(bytes);
  island::Island& isl = *islands_[ps.island];
  const Tick done = isl.dma_store(std::max(sim_.now(), ps.done_tick), ps.slot,
                                  ps.spill_addr, bytes);
  j.final_tick = std::max(j.final_tick, done);
  release(ps.island, ps.slot, std::max(done, ps.release_floor));
}

void Abc::start_task(JobId job, TaskId task, Slot slot) {
  Job& j = *jobs_[job];
  const DfgNode& node = j.dfg->node(task);
  TaskState& ts = j.tasks[task];
  ts.phase = TaskState::Phase::kRunning;
  ts.island = slot.island;
  ts.slot = slot.abb;
  active_[slot.island][slot.abb] = true;
  ++tasks_started_;

  island::Island& isl = *islands_[slot.island];
  const Tick t0 = sim_.now();
  Tick inputs_done = t0;
  Bytes bytes_in = node.mem_in_bytes;

  for (TaskId p : node.preds) {
    TaskState& ps = j.tasks[p];
    bytes_in += node.chain_in_bytes;
    Tick t;
    if (ps.spilled) {
      t = isl.dma_load(t0, ps.spill_addr, node.chain_in_bytes, slot.abb);
    } else {
      t = island::Island::chain(std::max(t0, ps.done_tick),
                                *islands_[ps.island], ps.slot, isl, slot.abb,
                                node.chain_in_bytes);
      ++chains_direct_;
      if (ps.consumers_unchained > 0 && --ps.consumers_unchained == 0 &&
          ps.phase == TaskState::Phase::kDone) {
        release(ps.island, ps.slot, std::max(t, ps.release_floor));
      }
    }
    inputs_done = std::max(inputs_done, t);
  }

  if (node.mem_in_bytes > 0) {
    inputs_done = std::max(
        inputs_done,
        isl.dma_load(t0, j.node_in_addr[task], node.mem_in_bytes, slot.abb));
  }

  // Streaming overlap: compute starts once the first double-buffer's worth
  // of input has arrived, and cannot finish before the last input does.
  auto& engine = isl.engine(slot.abb);
  Tick compute_start = inputs_done;
  if (bytes_in > 0 && inputs_done > t0) {
    const double frac = std::min(
        1.0, static_cast<double>(isl.spm(slot.abb).capacity()) / 2.0 /
                 static_cast<double>(bytes_in));
    compute_start =
        t0 + static_cast<Tick>(static_cast<double>(inputs_done - t0) * frac);
  }
  compute_start = std::max(compute_start, engine.busy_until());
  const Tick raw_end = engine.execute(compute_start, node.elements);
  ts.done_tick = std::max(raw_end, inputs_done);
  j.final_tick = std::max(j.final_tick, ts.done_tick);

  if (trace_ != nullptr) {
    trace_->record_span("j" + std::to_string(job) + ".t" +
                            std::to_string(task) + ":" +
                            abb::kind_name(node.kind),
                        slot.island, slot.abb, t0, ts.done_tick, "task");
  }
  if (task_latency_h_ != nullptr) task_latency_h_->record(ts.done_tick - t0);

  sim_.schedule_at(
      ts.done_tick, [this, job, task] { on_task_complete(job, task); },
      sim::EventKind::kTaskComplete);
}

void Abc::on_task_complete(JobId job, TaskId task) {
  Job& j = *jobs_[job];
  const DfgNode& node = j.dfg->node(task);
  TaskState& ts = j.tasks[task];
  ts.phase = TaskState::Phase::kDone;
  ++j.tasks_done;

  Tick store_done = ts.done_tick;
  if (node.mem_out_bytes > 0) {
    store_done = islands_[ts.island]->dma_store(
        ts.done_tick, ts.slot, j.node_out_addr[task], node.mem_out_bytes);
    j.final_tick = std::max(j.final_tick, store_done);
  }
  ts.release_floor = store_done;

  if (ts.consumers_unchained == 0) {
    // No chained consumers left (leaf task, or everything already pulled /
    // spilled): slot frees once the store drains.
    release(ts.island, ts.slot, store_done);
  }

  for (TaskId s : node.succs) {
    if (--j.tasks[s].preds_left == 0) on_task_ready(job, s);
  }
  maybe_finish_job(j);
}

void Abc::drain_pending() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      Job& j = *jobs_[it->job];
      Slot slot{};
      if (find_slot(j.dfg->node(it->task), j, slot)) {
        const JobId job = it->job;
        const TaskId task = it->task;
        pending_.erase(it);
        start_task(job, task, slot);
        progress = true;
        break;
      }
    }
  }
}

void Abc::maybe_finish_job(Job& j) {
  if (j.finished || j.tasks_done != j.dfg->size()) return;
  j.finished = true;
  const JobId id = j.id;
  sim_.schedule_at(
      std::max(j.final_tick, sim_.now()),
      [this, id] {
        Job& job = *jobs_[id];
        ++jobs_completed_;
        if (job.on_done) job.on_done(id, sim_.now());
      },
      sim::EventKind::kJobFinish);
}

// ------------------------------------------------------------ monolithic

void Abc::run_monolithic(JobId job, Tick start_at) {
  Job& j = *jobs_[job];
  const auto fp = j.dfg->fused_profile();

  // Earliest-free accelerator instance wins (the GAM's hardware
  // arbitration). Instances map round-robin onto islands, sharing each
  // island's DMA engine and NoC interface.
  std::size_t best = 0;
  for (std::size_t i = 1; i < mono_free_at_.size(); ++i) {
    if (mono_free_at_[i] < mono_free_at_[best]) best = i;
  }
  island::Island& isl = *islands_[best % islands_.size()];
  const Tick t0 = std::max({sim_.now(), start_at, mono_free_at_[best]});

  const Tick in_done = isl.dma_load(t0, j.in_base, fp.mem_in_bytes, 0);
  Tick compute_start = in_done;
  if (fp.mem_in_bytes > 0 && in_done > t0) {
    const double frac =
        std::min(1.0, static_cast<double>(isl.spm(0).capacity()) / 2.0 /
                          static_cast<double>(fp.mem_in_bytes));
    compute_start =
        t0 + static_cast<Tick>(static_cast<double>(in_done - t0) * frac);
  }
  const Tick compute_end =
      std::max(compute_start + fp.pipeline_latency +
                   static_cast<Tick>(std::ceil(
                       static_cast<double>(fp.elements) * fp.bottleneck_ii)),
               in_done);
  const Tick store_done =
      isl.dma_store(compute_end, 0, j.out_base, fp.mem_out_bytes);

  mono_busy_[best] += compute_end - t0;
  mono_free_at_[best] = compute_end;
  mono_energy_pj_ += fp.energy_pj_per_invocation;
  j.final_tick = std::max(store_done, compute_end);
  j.tasks_done = j.dfg->size();
  maybe_finish_job(j);
}

double Abc::mono_dynamic_energy_j() const { return pj_to_j(mono_energy_pj_); }

// ------------------------------------------------------------------ audit

std::string Abc::audit_allocation(std::uint64_t* checks) const {
  std::uint64_t local = 0;
  auto tick = [&] { ++local; };
  auto done = [&](std::string msg) {
    if (checks != nullptr) *checks += local;
    return msg;
  };

  tick();
  if (active_.size() != islands_.size() || offline_.size() != islands_.size())
    return done("allocation matrix shape diverged from island count");
  for (IslandId i = 0; i < islands_.size(); ++i) {
    tick();
    if (active_[i].size() != islands_[i]->num_abbs())
      return done("island " + std::to_string(i) +
                  ": activity row does not match its ABB count");
    if (config_.enforce_sharing_constraint &&
        islands_[i]->config().spm_sharing) {
      for (AbbId a = 0; a + 1 < active_[i].size(); ++a) {
        tick();
        if (active_[i][a] && active_[i][a + 1])
          return done("island " + std::to_string(i) + ": active neighbours " +
                      std::to_string(a) + "/" + std::to_string(a + 1) +
                      " violate SPM-sharing exclusion");
      }
    }
  }

  // Ownership: count the live claimants of every slot. A claimant is a
  // running task, a completed task whose release event has not fired yet,
  // or an atomic job's composition reservation for a not-yet-started task.
  std::vector<std::vector<std::uint32_t>> claims(islands_.size());
  std::vector<std::vector<std::uint32_t>> running(islands_.size());
  for (IslandId i = 0; i < islands_.size(); ++i) {
    claims[i].assign(active_[i].size(), 0);
    running[i].assign(active_[i].size(), 0);
  }
  auto slot_ok = [&](IslandId i, AbbId a) {
    return i < islands_.size() && a < active_[i].size();
  };
  for (const auto& job : jobs_) {
    const Job& j = *job;
    for (TaskId t = 0; t < j.tasks.size(); ++t) {
      const TaskState& ts = j.tasks[t];
      tick();
      if (ts.phase == TaskState::Phase::kRunning ||
          ts.phase == TaskState::Phase::kDone) {
        if (!slot_ok(ts.island, ts.slot))
          return done("job " + std::to_string(j.id) + " task " +
                      std::to_string(t) + ": slot id out of range");
        ++claims[ts.island][ts.slot];
        if (ts.phase == TaskState::Phase::kRunning) {
          ++running[ts.island][ts.slot];
          tick();
          if (!active_[ts.island][ts.slot])
            return done("job " + std::to_string(j.id) + " task " +
                        std::to_string(t) +
                        ": running on an inactive slot");
        }
      } else if (j.atomic && !j.assigned.empty()) {
        const Slot& s = j.assigned[t];
        if (slot_ok(s.island, s.abb)) ++claims[s.island][s.abb];
      }
    }
  }
  for (IslandId i = 0; i < islands_.size(); ++i) {
    for (AbbId a = 0; a < active_[i].size(); ++a) {
      tick();
      if (active_[i][a] && claims[i][a] == 0)
        return done("island " + std::to_string(i) + " slot " +
                    std::to_string(a) + ": active but unclaimed (leak)");
      tick();
      if (running[i][a] > 1)
        return done("island " + std::to_string(i) + " slot " +
                    std::to_string(a) + ": " +
                    std::to_string(running[i][a]) +
                    " tasks running concurrently (double allocation)");
    }
  }

  for (const PendingEntry& p : pending_) {
    tick();
    if (p.job >= jobs_.size() || p.task >= jobs_[p.job]->tasks.size() ||
        jobs_[p.job]->tasks[p.task].phase != TaskState::Phase::kPending)
      return done("pending queue entry references a non-pending task");
  }
  for (const JobId id : admit_queue_) {
    tick();
    if (id >= jobs_.size() || !jobs_[id]->atomic || jobs_[id]->finished)
      return done("admit queue holds a non-atomic or finished job");
  }

  tick();
  if (jobs_completed_ > next_job_)
    return done("more jobs completed than were ever submitted");
  if (checks != nullptr) *checks += local;
  return {};
}

// ---------------------------------------------------------- observability

void Abc::set_stats(sim::StatRegistry& reg) {
  task_latency_h_ = &reg.histogram("abc.task_latency",
                                   /*bucket_width=*/256, /*buckets=*/128);
}

void Abc::snapshot_stats(sim::StatRegistry& reg) const {
  reg.set_counter("abc.jobs_submitted", next_job_);
  reg.set_counter("abc.jobs_completed", jobs_completed_);
  reg.set_counter("abc.chains_direct", chains_direct_);
  reg.set_counter("abc.chains_spilled", chains_spilled_);
  reg.set_counter("abc.tasks_queued", tasks_queued_);
  reg.set_counter("abc.tasks_started", tasks_started_);
}

}  // namespace ara::abc
