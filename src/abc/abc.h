// ABC: the Accelerator Block Composer (paper Sec. 2) — the hardware engine
// inside the GAM that, given a kernel's ABB flow graph, dynamically
// allocates free ABBs across islands, composes them into a virtual
// accelerator, orchestrates DMA and chaining traffic, load-balances across
// islands, and frees blocks as the dataflow drains.
//
// Composition model: the ABC "uses data flow graphs at runtime to
// dynamically allocate and compose available ABBs in order to virtualize
// monolithic accelerators" (Sec. 2) — a job's entire virtual accelerator is
// composed atomically at admission. Placement is chaining-aware and
// load-balanced:
//  - a task with chained producers first tries the island of its first
//    producer's slot (chaining stays on the island network);
//  - otherwise (or when full) the island with the most free ABBs of the
//    required kind wins (load balancing), ties to the lowest island id.
// If the whole graph cannot be placed, the job waits in FIFO order; slots
// free as each task's data drains, and each release retries admission.
//
// Fallback (and deadlock backstop): a job whose per-kind ABB demand exceeds
// the chip's total inventory can never be composed atomically; it runs in
// per-task mode, where a ready task that cannot be placed makes its
// producers spill their chain data to shared memory and release their ABBs,
// so every block is eventually released.
//
// ARC mode: the same runtime can drive islands as ARC-style monolithic
// accelerators (one fused-pipeline accelerator per island, paper Sec. 2)
// for the generational comparison.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/dfg.h"
#include "island/island.h"
#include "mem/memory_system.h"
#include "sim/event_queue.h"
#include "sim/trace.h"

namespace ara::abc {

/// How the runtime uses the islands.
enum class ExecutionMode : std::uint8_t {
  kComposable = 0,  // CHARM/CAMEL: per-ABB composition
  kMonolithic,      // ARC: one fused accelerator per island
};

struct AbcConfig {
  ExecutionMode mode = ExecutionMode::kComposable;
  /// With SPM sharing (island config), an active ABB blocks its slot
  /// neighbours; the ABC must honour that during allocation (Sec. 5.1).
  bool enforce_sharing_constraint = true;
  /// Ablation: disable atomic virtual-accelerator composition and place
  /// every task individually when it becomes ready (spilling chains when
  /// consumers cannot be placed).
  bool force_per_task = false;
  /// Monolithic mode: number of dedicated accelerator instances on the
  /// chip (0 = one per island). ARC's dedicated accelerators are area
  /// constrained and shared across the whole domain's kernels, so a
  /// fair generational comparison derives this from the fused
  /// accelerator's area (see bench_sec2_generations).
  std::uint32_t mono_instances = 0;
};

/// Completion callback: (job id, completion tick).
using JobDoneFn = std::function<void(JobId, Tick)>;

class Abc {
 public:
  Abc(sim::Simulator& sim, mem::MemorySystem& mem,
      std::vector<island::Island*> islands, AbcConfig config);

  /// Launch one kernel invocation. `in_base`/`out_base` are the buffers the
  /// invocation streams from/to. Returns the job id.
  JobId submit_job(const dataflow::Dfg* dfg, Addr in_base, Addr out_base,
                   Tick start_at, JobDoneFn on_done);

  std::uint64_t jobs_completed() const { return jobs_completed_; }
  std::uint64_t jobs_submitted() const { return next_job_; }

  /// Chain-edge outcomes: transferred directly SPM->SPM vs spilled through
  /// shared memory because the consumer could not be placed in time.
  std::uint64_t chains_direct() const { return chains_direct_; }
  std::uint64_t chains_spilled() const { return chains_spilled_; }

  /// Tasks that had to wait in the pending queue for a free ABB.
  std::uint64_t tasks_queued() const { return tasks_queued_; }
  std::uint64_t tasks_started() const { return tasks_started_; }

  /// Take an island's blocks out of the allocation pool (failure
  /// injection, thermal/dark-silicon capping). In-flight tasks finish;
  /// future compositions avoid the island. Throws if taking the island
  /// offline would leave a benchmark kind with zero inventory.
  void set_island_offline(IslandId isl, bool offline);
  bool island_offline(IslandId isl) const { return offline_[isl]; }

  /// Monolithic-mode accounting (zero in composable mode).
  double mono_dynamic_energy_j() const;
  Tick mono_busy_cycles(std::size_t instance) const {
    return mono_busy_[instance];
  }
  std::size_t mono_instance_count() const { return mono_busy_.size(); }

  const AbcConfig& config() const { return config_; }

  /// Attach a trace collector (optional); task compute spans and spill
  /// events are recorded into it.
  void set_trace(sim::TraceCollector* trace) { trace_ = trace; }

  /// Install live instrumentation into `reg`: an "abc.task_latency"
  /// histogram (inputs-arriving through compute-done per task).
  void set_stats(sim::StatRegistry& reg);

  /// Roll job/chain/task totals into `reg` under "abc.*".
  void snapshot_stats(sim::StatRegistry& reg) const;

  /// Tasks and jobs currently waiting for resources (counter-track sample).
  std::size_t pending_depth() const {
    return pending_.size() + admit_queue_.size();
  }

  /// Internal-consistency audit of the allocation state (ara::check calls
  /// this between events). Verifies that the slot-activity matrix matches
  /// the islands' shapes, that SPM-sharing neighbour exclusion holds, that
  /// every active slot is claimed by a live owner (a running task, a
  /// completed task awaiting its scheduled release, or an atomic
  /// composition reservation) with at most one running task per slot, and
  /// that queued work references valid jobs/tasks. Returns a description of
  /// the first violated invariant, or an empty string when consistent.
  /// `checks` (optional) is incremented once per invariant evaluated.
  std::string audit_allocation(std::uint64_t* checks = nullptr) const;

 private:
  struct TaskState {
    enum class Phase : std::uint8_t { kWaiting, kPending, kRunning, kDone };
    Phase phase = Phase::kWaiting;
    std::uint32_t preds_left = 0;
    IslandId island = kInvalidId;
    AbbId slot = kInvalidId;
    Tick done_tick = 0;
    /// Earliest tick the slot may be released once consumers are served
    /// (covers an in-flight output store).
    Tick release_floor = 0;
    /// Consumers that have not yet pulled their chain data.
    std::uint32_t consumers_unchained = 0;
    bool spilled = false;
    Addr spill_addr = 0;
  };

  struct Slot {
    IslandId island = kInvalidId;
    AbbId abb = kInvalidId;
  };

  struct Job {
    JobId id = 0;
    const dataflow::Dfg* dfg = nullptr;
    Addr in_base = 0, out_base = 0;
    std::vector<Addr> node_in_addr;
    std::vector<Addr> node_out_addr;
    std::vector<TaskState> tasks;
    std::size_t tasks_done = 0;
    Tick final_tick = 0;  // max over compute/store/spill completions
    bool finished = false;
    /// Atomically-composed virtual accelerator (normal path) vs per-task
    /// fallback for graphs larger than the chip.
    bool atomic = true;
    std::vector<Slot> assigned;
    JobDoneFn on_done;
  };

  struct PendingEntry {
    JobId job;
    TaskId task;
  };

  // --- placement ---
  /// True when the DFG's per-kind demand fits the chip's total inventory
  /// (atomic composition possible at all). Accounts for the SPM-sharing
  /// allocation constraint by dry-running composition on an empty chip.
  bool fits_inventory(const dataflow::Dfg& dfg) const;
  /// Dry-run of assign_all against an empty chip (no persistent state).
  bool composable_on_empty_chip(const dataflow::Dfg& dfg) const;
  /// Compose the whole job: assign a slot to every task (chaining-aware),
  /// marking slots active. Returns false (and rolls back) if impossible now.
  bool assign_all(Job& j);
  /// Admit queued atomic jobs in FIFO order while composition succeeds.
  void try_start_jobs();
  bool find_slot(const dataflow::DfgNode& node, const Job& job,
                 Slot& out) const;
  bool slot_matches(IslandId isl, AbbId a,
                    const dataflow::DfgNode& node) const;
  bool slot_allocatable(IslandId isl, AbbId a) const;
  /// First matching allocatable slot on `isl`, scanning round-robin from a
  /// per-island cursor (levels wear/utilization across identical blocks).
  bool pick_slot_in_island(IslandId isl, const dataflow::DfgNode& node,
                           Slot& out) const;
  std::uint32_t free_matching_count(IslandId isl,
                                    const dataflow::DfgNode& node) const;
  void release(IslandId isl, AbbId a, Tick at);

  // --- task lifecycle ---
  void on_task_ready(JobId job, TaskId task);
  void start_task(JobId job, TaskId task, Slot slot);
  void on_task_complete(JobId job, TaskId task);
  void spill_producer(Job& j, TaskId producer);
  void drain_pending();
  void maybe_finish_job(Job& j);

  // --- monolithic (ARC) path ---
  void run_monolithic(JobId job, Tick start_at);

  sim::Simulator& sim_;
  mem::MemorySystem& mem_;
  std::vector<island::Island*> islands_;
  AbcConfig config_;

  /// Per island: slot activity flags (allocation state).
  std::vector<std::vector<bool>> active_;
  /// Per island: removed from the allocation pool.
  std::vector<bool> offline_;
  /// Per island: round-robin scan cursor for slot picking.
  mutable std::vector<AbbId> cursor_;
  /// Monolithic mode: per-island accelerator free tick / busy cycles.
  std::vector<Tick> mono_free_at_;
  std::vector<Tick> mono_busy_;
  double mono_energy_pj_ = 0.0;

  std::vector<std::unique_ptr<Job>> jobs_;
  sim::TraceCollector* trace_ = nullptr;
  sim::Histogram* task_latency_h_ = nullptr;
  std::deque<PendingEntry> pending_;   // per-task fallback queue
  std::deque<JobId> admit_queue_;      // atomic jobs awaiting composition

  JobId next_job_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t chains_direct_ = 0;
  std::uint64_t chains_spilled_ = 0;
  std::uint64_t tasks_queued_ = 0;
  std::uint64_t tasks_started_ = 0;
};

}  // namespace ara::abc
