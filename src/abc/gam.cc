#include "abc/gam.h"

#include <utility>

namespace ara::abc {

const char* gam_policy_name(GamPolicy p) {
  switch (p) {
    case GamPolicy::kFifo:
      return "fifo";
    case GamPolicy::kShortestFirst:
      return "shortest-first";
    case GamPolicy::kLargestFirst:
      return "largest-first";
  }
  return "?";
}

Gam::Gam(sim::Simulator& sim, noc::Mesh& mesh, Abc& abc, GamConfig config)
    : sim_(sim), mesh_(mesh), abc_(abc), config_(config) {}

void Gam::submit(const dataflow::Dfg* dfg, Addr in_base, Addr out_base,
                 NodeId origin, JobDoneFn on_done) {
  ++requests_;
  // Request message: core -> GAM over the NoC.
  const Tick arrive =
      mesh_.send_control(sim_.now(), origin, config_.node);
  Request req{dfg, in_base, out_base, origin, std::move(on_done)};
  sim_.schedule_at(
      arrive,
      [this, req = std::move(req)]() mutable {
        if (in_flight_ < config_.max_jobs_in_flight) {
          admit(std::move(req));
        } else {
          // Wait-time feedback (ARC [6]): the GAM tells the core how long
          // the resource is expected to stay busy.
          ++queued_;
          wait_estimate_sum_ +=
              mean_job_cycles_ * static_cast<double>(queue_.size() + 1);
          ++wait_samples_;
          queue_.push_back(std::move(req));
        }
      },
      sim::EventKind::kGamRequest);
}

void Gam::admit(Request req) {
  ++in_flight_;
  const Tick issued = sim_.now();
  const NodeId origin = req.origin;
  auto on_done = std::move(req.on_done);
  abc_.submit_job(
      req.dfg, req.in_base, req.out_base, sim_.now() + config_.request_latency,
      [this, issued, origin, on_done = std::move(on_done)](JobId id,
                                                           Tick done) {
        // Rolling mean duration feeds wait-time feedback.
        const double dur = static_cast<double>(done - issued);
        job_latency_.record(done - issued);
        if (job_latency_reg_ != nullptr) job_latency_reg_->record(done - issued);
        if (trace_ != nullptr) {
          trace_->record_span("job j" + std::to_string(id), sim::kTracePidGam,
                              origin, issued, done, "gam");
        }
        ++jobs_measured_;
        mean_job_cycles_ +=
            (dur - mean_job_cycles_) / static_cast<double>(jobs_measured_);

        --in_flight_;
        try_admit();

        // Lightweight completion interrupt: GAM -> core.
        ++interrupts_;
        const Tick at = mesh_.send_control(done, config_.node, origin) +
                        config_.interrupt_overhead;
        if (on_done) {
          sim_.schedule_at(
              at, [on_done, id, at] { on_done(id, at); },
              sim::EventKind::kGamInterrupt);
        }
      });
}

void Gam::try_admit() {
  while (in_flight_ < config_.max_jobs_in_flight && !queue_.empty()) {
    auto pick = queue_.begin();
    if (config_.policy != GamPolicy::kFifo) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        const bool better =
            config_.policy == GamPolicy::kShortestFirst
                ? it->dfg->size() < pick->dfg->size()
                : it->dfg->size() > pick->dfg->size();
        if (better) pick = it;
      }
    }
    Request req = std::move(*pick);
    queue_.erase(pick);
    admit(std::move(req));
  }
}

void Gam::set_stats(sim::StatRegistry& reg) {
  job_latency_reg_ = &reg.histogram("gam.job_latency", /*bucket_width=*/512,
                                    /*buckets=*/256);
}

void Gam::snapshot_stats(sim::StatRegistry& reg) const {
  reg.set_counter("gam.requests", requests_);
  reg.set_counter("gam.queued_requests", queued_);
  reg.set_counter("gam.interrupts", interrupts_);
}

}  // namespace ara::abc
