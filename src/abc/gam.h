// GAM: the Global Accelerator Manager (paper Sec. 2, ARC [6]) — the
// hardware unit cores talk to when launching accelerator work. It arbitrates
// a shared pool of accelerator resources among requesting cores, provides
// wait-time feedback when resources are busy, and signals completion with a
// lightweight interrupt (bypassing the OS interrupt path).
//
// In this codebase the GAM fronts the ABC: requests arrive over the NoC,
// are admitted up to a concurrency window, and completions are delivered
// back to the requesting core's node.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "abc/abc.h"
#include "common/types.h"
#include "dataflow/dfg.h"
#include "noc/mesh.h"
#include "sim/stats.h"
#include "sim/event_queue.h"
#include "sim/trace.h"

namespace ara::abc {

/// Order in which queued requests are admitted once a slot frees.
enum class GamPolicy : std::uint8_t {
  kFifo = 0,        // arrival order
  kShortestFirst,   // fewest ABB tasks first (SJF on composition size)
  kLargestFirst,    // most ABB tasks first (adversarial baseline)
};

const char* gam_policy_name(GamPolicy p);

struct GamConfig {
  /// GAM's mesh node.
  NodeId node = 0;
  GamPolicy policy = GamPolicy::kFifo;
  /// Jobs admitted to the ABC simultaneously; further requests queue in the
  /// GAM with wait-time feedback to the requesting core.
  std::uint32_t max_jobs_in_flight = 16;
  /// GAM arbitration/processing latency per request.
  Tick request_latency = 10;
  /// Lightweight-interrupt delivery overhead at the core (the paper's
  /// alternative to the costly OS interrupt path).
  Tick interrupt_overhead = 50;
};

class Gam {
 public:
  Gam(sim::Simulator& sim, noc::Mesh& mesh, Abc& abc, GamConfig config);

  /// A core at `origin` asks to run one invocation of `dfg`. `on_done`
  /// fires at the core once the completion interrupt is delivered.
  void submit(const dataflow::Dfg* dfg, Addr in_base, Addr out_base,
              NodeId origin, JobDoneFn on_done);

  std::uint64_t requests() const { return requests_; }
  std::uint64_t queued_requests() const { return queued_; }
  /// Mean wait-time estimate returned to cores whose request had to queue.
  double mean_wait_estimate() const {
    return wait_samples_ == 0 ? 0.0
                              : wait_estimate_sum_ /
                                    static_cast<double>(wait_samples_);
  }
  std::uint64_t interrupts_delivered() const { return interrupts_; }
  /// Jobs currently admitted to the ABC (always <= max_jobs_in_flight; the
  /// invariant checker asserts the window is never oversubscribed).
  std::uint32_t jobs_in_flight() const { return in_flight_; }
  const GamConfig& config() const { return config_; }

  /// Distribution of end-to-end job latencies (request at the core to
  /// completion interrupt delivered), cycles.
  const sim::Histogram& job_latency() const { return job_latency_; }

  /// Requests currently queued awaiting admission (counter-track sample).
  std::size_t queue_depth() const { return queue_.size(); }

  /// Install live instrumentation into `reg`: a "gam.job_latency" histogram
  /// mirroring job_latency() inside the registry.
  void set_stats(sim::StatRegistry& reg);

  /// Roll request/interrupt totals into `reg` under "gam.*".
  void snapshot_stats(sim::StatRegistry& reg) const;

  /// Attach a trace collector: each admitted job records a span on the GAM
  /// process, one track per requesting core node.
  void set_trace(sim::TraceCollector* trace) { trace_ = trace; }

 private:
  struct Request {
    const dataflow::Dfg* dfg;
    Addr in_base, out_base;
    NodeId origin;
    JobDoneFn on_done;
  };

  void try_admit();
  void admit(Request req);

  sim::Simulator& sim_;
  noc::Mesh& mesh_;
  Abc& abc_;
  GamConfig config_;
  std::deque<Request> queue_;
  std::uint32_t in_flight_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t interrupts_ = 0;
  double wait_estimate_sum_ = 0.0;
  std::uint64_t wait_samples_ = 0;
  /// Rolling mean job duration for wait-time feedback.
  double mean_job_cycles_ = 0.0;
  std::uint64_t jobs_measured_ = 0;
  sim::Histogram job_latency_{"gam.job_latency", /*bucket_width=*/512,
                              /*buckets=*/256};
  sim::Histogram* job_latency_reg_ = nullptr;
  sim::TraceCollector* trace_ = nullptr;
};

}  // namespace ara::abc
