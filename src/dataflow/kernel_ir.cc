#include "dataflow/kernel_ir.h"

#include "common/config_error.h"

namespace ara::dataflow {

const char* ir_op_name(IrOp op) {
  switch (op) {
    case IrOp::kInput: return "input";
    case IrOp::kConst: return "const";
    case IrOp::kAdd: return "add";
    case IrOp::kSub: return "sub";
    case IrOp::kMul: return "mul";
    case IrOp::kDiv: return "div";
    case IrOp::kSqrt: return "sqrt";
    case IrOp::kPow: return "pow";
    case IrOp::kExp: return "exp";
    case IrOp::kLog: return "log";
    case IrOp::kReduceSum: return "reduce_sum";
    case IrOp::kSin: return "sin";
    case IrOp::kCos: return "cos";
  }
  return "?";
}

bool is_poly_op(IrOp op) {
  return op == IrOp::kAdd || op == IrOp::kSub || op == IrOp::kMul;
}

bool is_direct_abb_op(IrOp op) {
  switch (op) {
    case IrOp::kDiv:
    case IrOp::kSqrt:
    case IrOp::kPow:
    case IrOp::kExp:
    case IrOp::kLog:
    case IrOp::kReduceSum:
      return true;
    default:
      return false;
  }
}

bool is_fabric_op(IrOp op) { return op == IrOp::kSin || op == IrOp::kCos; }

std::uint32_t KernelIr::push(IrNode n) {
  for (std::uint32_t a : n.args) {
    config_check(a < nodes_.size(), "IR operand out of range");
  }
  nodes_.push_back(std::move(n));
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

std::uint32_t KernelIr::input() {
  ++inputs_;
  return push(IrNode{IrOp::kInput, {}});
}

std::uint32_t KernelIr::constant() { return push(IrNode{IrOp::kConst, {}}); }

std::uint32_t KernelIr::unary(IrOp op, std::uint32_t a) {
  config_check(op == IrOp::kSqrt || op == IrOp::kExp || op == IrOp::kLog ||
                   op == IrOp::kSin || op == IrOp::kCos,
               "not a unary op");
  return push(IrNode{op, {a}});
}

std::uint32_t KernelIr::binary(IrOp op, std::uint32_t a, std::uint32_t b) {
  config_check(is_poly_op(op) || op == IrOp::kDiv || op == IrOp::kPow,
               "not a binary op");
  return push(IrNode{op, {a, b}});
}

std::uint32_t KernelIr::reduce(const std::vector<std::uint32_t>& args) {
  config_check(!args.empty(), "reduction needs operands");
  return push(IrNode{IrOp::kReduceSum, args});
}

void KernelIr::mark_output(std::uint32_t id) {
  config_check(id < nodes_.size(), "output id out of range");
  outputs_.push_back(id);
}

}  // namespace ara::dataflow
