// ABB flow graph: the artifact the CHARM compiler produces for each
// compute-intensive kernel ("our compiler decomposes each kernel into a set
// of ABBs at compile time, and stores the data flow graph describing the
// composition" — paper Sec. 2). The ABC consumes this graph at runtime to
// allocate and compose ABBs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abb/abb_types.h"
#include "common/types.h"

namespace ara::dataflow {

struct DfgNode {
  abb::AbbKind kind = abb::AbbKind::kPoly;
  /// Element groups this node processes (one group = `input_words` operands).
  std::uint64_t elements = 0;
  /// Bytes loaded from shared memory (non-chained operand streams).
  Bytes mem_in_bytes = 0;
  /// Bytes stored to shared memory (0 when all output is chained onward).
  Bytes mem_out_bytes = 0;
  /// Chained producers (indices of other nodes in the same graph).
  std::vector<TaskId> preds;
  /// Chained consumers (filled by finalize()).
  std::vector<TaskId> succs;
  /// Bytes received over each chain edge from a producer.
  Bytes chain_in_bytes = 0;
  /// Requires the CAMEL programmable fabric (op outside the ABB library).
  bool needs_fabric = false;
};

/// Timing profile of the kernel when implemented as an ARC-style monolithic
/// accelerator: all ABB stages fused into one pipeline with dedicated
/// DMA/SPM (used by the generational comparison, Sec. 2).
struct FusedProfile {
  Tick pipeline_latency = 0;        // sum of latencies along critical path
  double bottleneck_ii = 1.0;       // slowest stage initiation interval
  std::uint64_t elements = 0;       // element groups through the pipeline
  Bytes mem_in_bytes = 0;
  Bytes mem_out_bytes = 0;
  double energy_pj_per_invocation = 0.0;
  double area_mm2 = 0.0;
};

class Dfg {
 public:
  Dfg() = default;
  explicit Dfg(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Append a node; returns its TaskId.
  TaskId add_node(DfgNode node);

  /// Add a chain edge producer -> consumer. Must be called before
  /// finalize(); `consumer.chain_in_bytes` covers each incoming edge.
  void add_edge(TaskId producer, TaskId consumer);

  /// Validate (acyclic, ids in range), fill succs, compute topo order.
  /// Throws ConfigError on malformed graphs.
  void finalize();
  bool finalized() const { return finalized_; }

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const DfgNode& node(TaskId t) const { return nodes_[t]; }
  const std::vector<DfgNode>& nodes() const { return nodes_; }

  /// Topological order (valid after finalize()).
  const std::vector<TaskId>& topo_order() const { return topo_; }

  /// Number of chain edges.
  std::size_t chain_edges() const { return chain_edges_; }

  /// Fraction of nodes with at least one chained producer — the paper's
  /// "amount of ABB chaining" that separates Denoise from EKF-SLAM.
  double chaining_degree() const;

  /// Total bytes moved from/to shared memory per invocation.
  Bytes total_mem_in() const;
  Bytes total_mem_out() const;
  /// Total bytes moved over chain edges per invocation.
  Bytes total_chain_bytes() const;

  /// Critical-path length in nodes (longest chain).
  std::size_t critical_path_nodes() const;

  /// Monolithic-accelerator profile (ARC mode).
  FusedProfile fused_profile() const;

 private:
  std::string name_;
  std::vector<DfgNode> nodes_;
  std::vector<TaskId> topo_;
  std::size_t chain_edges_ = 0;
  bool finalized_ = false;
};

}  // namespace ara::dataflow
