// Kernel IR: a small expression-DAG intermediate representation for
// compute-intensive kernels, standing in for the CDSC compiler front end
// [15]. A kernel is a loop of `elements` iterations evaluating an
// expression DAG over streamed inputs; the Decomposer covers this DAG with
// ABBs to produce the Dfg the ABC executes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ara::dataflow {

enum class IrOp : std::uint8_t {
  kInput = 0,  // streamed operand (4 bytes per element)
  kConst,      // compile-time constant (no memory traffic)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kSqrt,
  kPow,
  kExp,
  kLog,
  kReduceSum,  // 16-way reduction stage
  kSin,        // outside the ABB library -> programmable fabric (CAMEL)
  kCos,
};

const char* ir_op_name(IrOp op);

/// True for +,-,* — the ops the 16-input polynomial ABB absorbs.
bool is_poly_op(IrOp op);

/// True for ops with a dedicated ABB kind (div/sqrt/pow/exp/log/reduce).
bool is_direct_abb_op(IrOp op);

/// True for ops only the CAMEL programmable fabric can execute.
bool is_fabric_op(IrOp op);

struct IrNode {
  IrOp op = IrOp::kInput;
  std::vector<std::uint32_t> args;  // ids of operand nodes
};

class KernelIr {
 public:
  KernelIr(std::string name, std::uint64_t elements)
      : name_(std::move(name)), elements_(elements) {}

  const std::string& name() const { return name_; }
  std::uint64_t elements() const { return elements_; }

  /// Builders; all return the new node id.
  std::uint32_t input();
  std::uint32_t constant();
  std::uint32_t unary(IrOp op, std::uint32_t a);
  std::uint32_t binary(IrOp op, std::uint32_t a, std::uint32_t b);
  /// N-ary reduction over `args`.
  std::uint32_t reduce(const std::vector<std::uint32_t>& args);

  /// Mark a node as a kernel output (stored to memory each element).
  void mark_output(std::uint32_t id);

  std::size_t size() const { return nodes_.size(); }
  const IrNode& node(std::uint32_t id) const { return nodes_[id]; }
  const std::vector<IrNode>& nodes() const { return nodes_; }
  const std::vector<std::uint32_t>& outputs() const { return outputs_; }

  std::size_t input_count() const { return inputs_; }

 private:
  std::uint32_t push(IrNode n);

  std::string name_;
  std::uint64_t elements_;
  std::vector<IrNode> nodes_;
  std::vector<std::uint32_t> outputs_;
  std::size_t inputs_ = 0;
};

}  // namespace ara::dataflow
