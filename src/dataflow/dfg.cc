#include "dataflow/dfg.h"

#include <algorithm>
#include <queue>

#include "common/config_error.h"

namespace ara::dataflow {

TaskId Dfg::add_node(DfgNode node) {
  config_check(!finalized_, "cannot add nodes to a finalized DFG");
  nodes_.push_back(std::move(node));
  return static_cast<TaskId>(nodes_.size() - 1);
}

void Dfg::add_edge(TaskId producer, TaskId consumer) {
  config_check(!finalized_, "cannot add edges to a finalized DFG");
  config_check(producer < nodes_.size() && consumer < nodes_.size(),
               "DFG edge endpoint out of range");
  config_check(producer != consumer, "DFG self-edge");
  nodes_[consumer].preds.push_back(producer);
}

void Dfg::finalize() {
  config_check(!finalized_, "DFG already finalized");
  // Rebuild succs from preds, count edges.
  chain_edges_ = 0;
  for (auto& n : nodes_) n.succs.clear();
  for (TaskId c = 0; c < nodes_.size(); ++c) {
    for (TaskId p : nodes_[c].preds) {
      config_check(p < nodes_.size(), "DFG pred out of range");
      nodes_[p].succs.push_back(c);
      ++chain_edges_;
    }
  }
  // Kahn topological sort; cycle check.
  std::vector<std::uint32_t> indeg(nodes_.size(), 0);
  for (const auto& n : nodes_) {
    for (TaskId p : n.preds) {
      (void)p;
    }
  }
  for (TaskId c = 0; c < nodes_.size(); ++c) {
    indeg[c] = static_cast<std::uint32_t>(nodes_[c].preds.size());
  }
  std::queue<TaskId> ready;
  for (TaskId t = 0; t < nodes_.size(); ++t) {
    if (indeg[t] == 0) ready.push(t);
  }
  topo_.clear();
  topo_.reserve(nodes_.size());
  while (!ready.empty()) {
    const TaskId t = ready.front();
    ready.pop();
    topo_.push_back(t);
    for (TaskId s : nodes_[t].succs) {
      if (--indeg[s] == 0) ready.push(s);
    }
  }
  config_check(topo_.size() == nodes_.size(), "DFG contains a cycle");
  finalized_ = true;
}

double Dfg::chaining_degree() const {
  if (nodes_.empty()) return 0.0;
  std::size_t chained = 0;
  for (const auto& n : nodes_) {
    if (!n.preds.empty()) ++chained;
  }
  return static_cast<double>(chained) / static_cast<double>(nodes_.size());
}

Bytes Dfg::total_mem_in() const {
  Bytes sum = 0;
  for (const auto& n : nodes_) sum += n.mem_in_bytes;
  return sum;
}

Bytes Dfg::total_mem_out() const {
  Bytes sum = 0;
  for (const auto& n : nodes_) sum += n.mem_out_bytes;
  return sum;
}

Bytes Dfg::total_chain_bytes() const {
  Bytes sum = 0;
  for (const auto& n : nodes_) {
    sum += n.chain_in_bytes * n.preds.size();
  }
  return sum;
}

std::size_t Dfg::critical_path_nodes() const {
  config_check(finalized_, "critical path requires a finalized DFG");
  std::vector<std::size_t> depth(nodes_.size(), 1);
  std::size_t best = nodes_.empty() ? 0 : 1;
  for (TaskId t : topo_) {
    for (TaskId p : nodes_[t].preds) {
      depth[t] = std::max(depth[t], depth[p] + 1);
    }
    best = std::max(best, depth[t]);
  }
  return best;
}

FusedProfile Dfg::fused_profile() const {
  config_check(finalized_, "fused profile requires a finalized DFG");
  FusedProfile fp;
  // Critical-path latency: longest latency sum over chain paths.
  std::vector<Tick> lat(nodes_.size(), 0);
  for (TaskId t : topo_) {
    const auto& n = nodes_[t];
    const auto& p = abb::params(n.needs_fabric ? abb::AbbKind::kFabric
                                               : n.kind);
    Tick in = 0;
    for (TaskId pr : n.preds) in = std::max(in, lat[pr]);
    lat[t] = in + p.pipeline_latency;
    fp.pipeline_latency = std::max(fp.pipeline_latency, lat[t]);

    double ii = static_cast<double>(p.initiation_interval);
    if (n.needs_fabric) ii *= abb::kFabricIiMultiplier;
    fp.bottleneck_ii = std::max(fp.bottleneck_ii, ii);
    fp.elements = std::max(fp.elements, n.elements);
    fp.mem_in_bytes += n.mem_in_bytes;
    fp.mem_out_bytes += n.mem_out_bytes;
    double pj = p.energy_pj_per_elem * static_cast<double>(n.elements);
    if (n.needs_fabric) pj *= abb::kFabricEnergyMultiplier;
    fp.energy_pj_per_invocation += pj;
    fp.area_mm2 += p.area_mm2;
  }
  return fp;
}

}  // namespace ara::dataflow
