#include "dataflow/decomposer.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/config_error.h"

namespace ara::dataflow {

namespace {

abb::AbbKind kind_of_direct(IrOp op) {
  switch (op) {
    case IrOp::kDiv:
      return abb::AbbKind::kDivide;
    case IrOp::kSqrt:
      return abb::AbbKind::kSqrt;
    case IrOp::kPow:
    case IrOp::kExp:
    case IrOp::kLog:
      return abb::AbbKind::kPower;
    case IrOp::kReduceSum:
      return abb::AbbKind::kSum;
    default:
      throw ConfigError("not a direct-ABB op");
  }
}

}  // namespace

DecomposeResult Decomposer::decompose(const KernelIr& ir) const {
  constexpr std::uint32_t kNoGroup = kInvalidId;
  const auto& nodes = ir.nodes();
  const std::uint64_t elements = ir.elements();
  const Bytes word = abb::kWordBytes;
  const std::uint32_t max_poly_inputs =
      abb::params(abb::AbbKind::kPoly).input_words;

  // ---- pass 1: group {+,-,*} regions into polynomial blocks ----
  std::vector<std::uint32_t> group_of(nodes.size(), kNoGroup);
  // Per group: external source ids (producers outside the group, including
  // kInput leaves; kConst operands are baked-in coefficients).
  std::vector<std::set<std::uint32_t>> group_ext;

  auto externals_if_joined = [&](std::uint32_t g,
                                 std::uint32_t n) -> std::size_t {
    std::set<std::uint32_t> ext = group_ext[g];
    ext.erase(n);  // n's output becomes internal
    for (std::uint32_t a : nodes[n].args) {
      if (nodes[a].op == IrOp::kConst) continue;
      if (group_of[a] == g) continue;
      ext.insert(a);
    }
    return ext.size();
  };

  for (std::uint32_t n = 0; n < nodes.size(); ++n) {
    if (!is_poly_op(nodes[n].op)) continue;
    // Try to join the group of an arithmetic operand.
    std::uint32_t joined = kNoGroup;
    for (std::uint32_t a : nodes[n].args) {
      const std::uint32_t g = group_of[a];
      if (g == kNoGroup) continue;
      if (externals_if_joined(g, n) <= max_poly_inputs) {
        joined = g;
        break;
      }
    }
    if (joined == kNoGroup) {
      joined = static_cast<std::uint32_t>(group_ext.size());
      group_ext.emplace_back();
    }
    group_of[n] = joined;
    auto& ext = group_ext[joined];
    ext.erase(n);
    for (std::uint32_t a : nodes[n].args) {
      if (nodes[a].op == IrOp::kConst) continue;
      if (group_of[a] == joined) continue;
      ext.insert(a);
    }
  }

  // A group's "representative" task is created once, at its last member
  // (the group's result producer is the highest-id member — IR builders
  // only reference existing nodes, so ids are topological).
  std::vector<std::uint32_t> group_root(group_ext.size(), 0);
  for (std::uint32_t n = 0; n < nodes.size(); ++n) {
    if (group_of[n] != kNoGroup) group_root[group_of[n]] = n;
  }

  // ---- pass 2: create DFG tasks ----
  DecomposeResult result;
  result.dfg.set_name(ir.name());
  result.task_of_ir.assign(nodes.size(), kInvalidId);
  std::vector<TaskId> task_of_group(group_ext.size(), kInvalidId);

  for (std::uint32_t n = 0; n < nodes.size(); ++n) {
    const IrOp op = nodes[n].op;
    if (op == IrOp::kInput || op == IrOp::kConst) continue;

    if (is_poly_op(op)) {
      const std::uint32_t g = group_of[n];
      if (group_root[g] != n) continue;  // only the root creates the task
      DfgNode d;
      d.kind = abb::AbbKind::kPoly;
      d.elements = elements;
      // Memory inputs: the group's external kInput leaves.
      std::size_t input_leaves = 0;
      for (std::uint32_t src : group_ext[g]) {
        if (nodes[src].op == IrOp::kInput) ++input_leaves;
      }
      d.mem_in_bytes = static_cast<Bytes>(input_leaves) * elements * word;
      d.chain_in_bytes = elements * word;
      task_of_group[g] = result.dfg.add_node(std::move(d));
      ++result.poly_groups;
      continue;
    }

    DfgNode d;
    d.elements = elements;
    d.chain_in_bytes = elements * word;
    if (is_fabric_op(op)) {
      config_check(allow_fabric_,
                   "kernel '" + ir.name() + "' uses op '" +
                       ir_op_name(op) +
                       "' outside the ABB library and fabric is disabled");
      d.kind = abb::AbbKind::kPoly;  // emulated shape; fabric timing applies
      d.needs_fabric = true;
      ++result.fabric_ops;
    } else {
      d.kind = kind_of_direct(op);
      ++result.direct_ops;
    }
    std::size_t input_leaves = 0;
    for (std::uint32_t a : nodes[n].args) {
      if (nodes[a].op == IrOp::kInput) ++input_leaves;
    }
    d.mem_in_bytes = static_cast<Bytes>(input_leaves) * elements * word;
    result.task_of_ir[n] = result.dfg.add_node(std::move(d));
  }
  // Group members all map to the group's task.
  for (std::uint32_t n = 0; n < nodes.size(); ++n) {
    if (group_of[n] != kNoGroup) {
      result.task_of_ir[n] = task_of_group[group_of[n]];
    }
  }

  // ---- pass 3: chain edges (deduplicated per consumer) ----
  for (std::uint32_t n = 0; n < nodes.size(); ++n) {
    const TaskId consumer = result.task_of_ir[n];
    if (consumer == kInvalidId) continue;
    // Only the group root (or the direct op itself) wires edges for the
    // whole task; gather producer tasks over all members' external args.
    std::set<TaskId> producers;
    auto collect = [&](std::uint32_t member) {
      for (std::uint32_t a : nodes[member].args) {
        const TaskId p = result.task_of_ir[a];
        if (p != kInvalidId && p != consumer) producers.insert(p);
      }
    };
    if (group_of[n] != kNoGroup) {
      if (group_root[group_of[n]] != n) continue;
      for (std::uint32_t m = 0; m < nodes.size(); ++m) {
        if (group_of[m] == group_of[n]) collect(m);
      }
    } else {
      collect(n);
    }
    for (TaskId p : producers) result.dfg.add_edge(p, consumer);
  }

  // ---- pass 4: outputs: marked outputs plus unconsumed roots ----
  std::set<TaskId> output_tasks;
  for (std::uint32_t id : ir.outputs()) {
    const TaskId t = result.task_of_ir[id];
    config_check(t != kInvalidId, "kernel output is not a computed value");
    output_tasks.insert(t);
  }
  result.dfg.finalize();
  for (TaskId t = 0; t < result.dfg.size(); ++t) {
    if (output_tasks.count(t) != 0 || result.dfg.node(t).succs.empty()) {
      // finalize() fixed succs; mem_out mutation happens via const_cast-free
      // path below.
      output_tasks.insert(t);
    }
  }
  // Rebuild with mem_out set (Dfg nodes are immutable post-finalize, so
  // mem_out is assigned before finalize in a rebuilt graph).
  Dfg out(ir.name());
  for (TaskId t = 0; t < result.dfg.size(); ++t) {
    DfgNode d = result.dfg.node(t);
    d.succs.clear();
    if (output_tasks.count(t) != 0) {
      d.mem_out_bytes = elements * word;
    }
    out.add_node(std::move(d));
  }
  out.finalize();
  result.dfg = std::move(out);
  return result;
}

}  // namespace ara::dataflow
