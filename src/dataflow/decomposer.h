// Decomposer: covers a KernelIr expression DAG with ABBs, producing the
// Dfg the ABC composes at runtime. This is the reproduction of the CHARM
// compiler pass ("analyzing a given accelerator kernel, determining a
// minimum set of ABBs to cover the kernel, and generating an ABB flow
// graph" — paper Sec. 4).
//
// Covering algorithm:
//  1. Ops with a dedicated ABB (div, sqrt, pow/exp/log, reduce) map 1:1.
//  2. Connected {+,-,*} regions are greedily merged into 16-input
//     polynomial ABBs (a region is split when its external-input count
//     would exceed the poly block's 16 operand ports).
//  3. Ops outside the library (sin/cos) map to the programmable fabric and
//     are flagged `needs_fabric` (CAMEL); with `allow_fabric=false` the
//     decomposer rejects the kernel (pure-CHARM behaviour).
#pragma once

#include <cstdint>

#include "dataflow/dfg.h"
#include "dataflow/kernel_ir.h"

namespace ara::dataflow {

struct DecomposeResult {
  Dfg dfg;
  /// IR node id -> DFG task id (kInput/kConst nodes map to kInvalidId).
  std::vector<TaskId> task_of_ir;
  std::size_t poly_groups = 0;
  std::size_t direct_ops = 0;
  std::size_t fabric_ops = 0;
};

class Decomposer {
 public:
  explicit Decomposer(bool allow_fabric = true)
      : allow_fabric_(allow_fabric) {}

  /// Throws ConfigError when the kernel uses ops outside the ABB library
  /// and fabric fallback is disabled.
  DecomposeResult decompose(const KernelIr& ir) const;

 private:
  bool allow_fabric_;
};

}  // namespace ara::dataflow
