
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/abb_test.cc" "tests/CMakeFiles/ara_tests.dir/abb_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/abb_test.cc.o.d"
  "/root/repo/tests/abc_test.cc" "tests/CMakeFiles/ara_tests.dir/abc_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/abc_test.cc.o.d"
  "/root/repo/tests/accounting_test.cc" "tests/CMakeFiles/ara_tests.dir/accounting_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/accounting_test.cc.o.d"
  "/root/repo/tests/bottleneck_test.cc" "tests/CMakeFiles/ara_tests.dir/bottleneck_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/bottleneck_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/ara_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/dataflow_test.cc" "tests/CMakeFiles/ara_tests.dir/dataflow_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/dataflow_test.cc.o.d"
  "/root/repo/tests/dse_test.cc" "tests/CMakeFiles/ara_tests.dir/dse_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/dse_test.cc.o.d"
  "/root/repo/tests/golden_test.cc" "tests/CMakeFiles/ara_tests.dir/golden_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/golden_test.cc.o.d"
  "/root/repo/tests/ir_kernels_test.cc" "tests/CMakeFiles/ara_tests.dir/ir_kernels_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/ir_kernels_test.cc.o.d"
  "/root/repo/tests/island_test.cc" "tests/CMakeFiles/ara_tests.dir/island_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/island_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/ara_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/noc_test.cc" "tests/CMakeFiles/ara_tests.dir/noc_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/noc_test.cc.o.d"
  "/root/repo/tests/out_of_domain_test.cc" "tests/CMakeFiles/ara_tests.dir/out_of_domain_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/out_of_domain_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/ara_tests.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/pipeline_test.cc.o.d"
  "/root/repo/tests/power_test.cc" "tests/CMakeFiles/ara_tests.dir/power_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/power_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/ara_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/resilience_test.cc" "tests/CMakeFiles/ara_tests.dir/resilience_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/resilience_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/ara_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/system_test.cc" "tests/CMakeFiles/ara_tests.dir/system_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/system_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/ara_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/ara_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ara.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
