# Empty compiler generated dependencies file for ara_tests.
# This may be replaced when dependencies are built.
