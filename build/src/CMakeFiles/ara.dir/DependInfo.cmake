
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abb/abb_engine.cc" "src/CMakeFiles/ara.dir/abb/abb_engine.cc.o" "gcc" "src/CMakeFiles/ara.dir/abb/abb_engine.cc.o.d"
  "/root/repo/src/abb/abb_types.cc" "src/CMakeFiles/ara.dir/abb/abb_types.cc.o" "gcc" "src/CMakeFiles/ara.dir/abb/abb_types.cc.o.d"
  "/root/repo/src/abc/abc.cc" "src/CMakeFiles/ara.dir/abc/abc.cc.o" "gcc" "src/CMakeFiles/ara.dir/abc/abc.cc.o.d"
  "/root/repo/src/abc/gam.cc" "src/CMakeFiles/ara.dir/abc/gam.cc.o" "gcc" "src/CMakeFiles/ara.dir/abc/gam.cc.o.d"
  "/root/repo/src/cmp/cmp_model.cc" "src/CMakeFiles/ara.dir/cmp/cmp_model.cc.o" "gcc" "src/CMakeFiles/ara.dir/cmp/cmp_model.cc.o.d"
  "/root/repo/src/common/config_error.cc" "src/CMakeFiles/ara.dir/common/config_error.cc.o" "gcc" "src/CMakeFiles/ara.dir/common/config_error.cc.o.d"
  "/root/repo/src/core/arch_config.cc" "src/CMakeFiles/ara.dir/core/arch_config.cc.o" "gcc" "src/CMakeFiles/ara.dir/core/arch_config.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/ara.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/ara.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/run_result.cc" "src/CMakeFiles/ara.dir/core/run_result.cc.o" "gcc" "src/CMakeFiles/ara.dir/core/run_result.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/ara.dir/core/system.cc.o" "gcc" "src/CMakeFiles/ara.dir/core/system.cc.o.d"
  "/root/repo/src/dataflow/decomposer.cc" "src/CMakeFiles/ara.dir/dataflow/decomposer.cc.o" "gcc" "src/CMakeFiles/ara.dir/dataflow/decomposer.cc.o.d"
  "/root/repo/src/dataflow/dfg.cc" "src/CMakeFiles/ara.dir/dataflow/dfg.cc.o" "gcc" "src/CMakeFiles/ara.dir/dataflow/dfg.cc.o.d"
  "/root/repo/src/dataflow/kernel_ir.cc" "src/CMakeFiles/ara.dir/dataflow/kernel_ir.cc.o" "gcc" "src/CMakeFiles/ara.dir/dataflow/kernel_ir.cc.o.d"
  "/root/repo/src/dse/bottleneck.cc" "src/CMakeFiles/ara.dir/dse/bottleneck.cc.o" "gcc" "src/CMakeFiles/ara.dir/dse/bottleneck.cc.o.d"
  "/root/repo/src/dse/report.cc" "src/CMakeFiles/ara.dir/dse/report.cc.o" "gcc" "src/CMakeFiles/ara.dir/dse/report.cc.o.d"
  "/root/repo/src/dse/sweep.cc" "src/CMakeFiles/ara.dir/dse/sweep.cc.o" "gcc" "src/CMakeFiles/ara.dir/dse/sweep.cc.o.d"
  "/root/repo/src/dse/table.cc" "src/CMakeFiles/ara.dir/dse/table.cc.o" "gcc" "src/CMakeFiles/ara.dir/dse/table.cc.o.d"
  "/root/repo/src/island/abb_spm_xbar.cc" "src/CMakeFiles/ara.dir/island/abb_spm_xbar.cc.o" "gcc" "src/CMakeFiles/ara.dir/island/abb_spm_xbar.cc.o.d"
  "/root/repo/src/island/dma_engine.cc" "src/CMakeFiles/ara.dir/island/dma_engine.cc.o" "gcc" "src/CMakeFiles/ara.dir/island/dma_engine.cc.o.d"
  "/root/repo/src/island/island.cc" "src/CMakeFiles/ara.dir/island/island.cc.o" "gcc" "src/CMakeFiles/ara.dir/island/island.cc.o.d"
  "/root/repo/src/island/spm.cc" "src/CMakeFiles/ara.dir/island/spm.cc.o" "gcc" "src/CMakeFiles/ara.dir/island/spm.cc.o.d"
  "/root/repo/src/island/spm_dma_net.cc" "src/CMakeFiles/ara.dir/island/spm_dma_net.cc.o" "gcc" "src/CMakeFiles/ara.dir/island/spm_dma_net.cc.o.d"
  "/root/repo/src/island/tlb.cc" "src/CMakeFiles/ara.dir/island/tlb.cc.o" "gcc" "src/CMakeFiles/ara.dir/island/tlb.cc.o.d"
  "/root/repo/src/mem/bin_allocator.cc" "src/CMakeFiles/ara.dir/mem/bin_allocator.cc.o" "gcc" "src/CMakeFiles/ara.dir/mem/bin_allocator.cc.o.d"
  "/root/repo/src/mem/l2_cache.cc" "src/CMakeFiles/ara.dir/mem/l2_cache.cc.o" "gcc" "src/CMakeFiles/ara.dir/mem/l2_cache.cc.o.d"
  "/root/repo/src/mem/memory_controller.cc" "src/CMakeFiles/ara.dir/mem/memory_controller.cc.o" "gcc" "src/CMakeFiles/ara.dir/mem/memory_controller.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/ara.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/ara.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/noc/mesh.cc" "src/CMakeFiles/ara.dir/noc/mesh.cc.o" "gcc" "src/CMakeFiles/ara.dir/noc/mesh.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/CMakeFiles/ara.dir/noc/router.cc.o" "gcc" "src/CMakeFiles/ara.dir/noc/router.cc.o.d"
  "/root/repo/src/power/area_model.cc" "src/CMakeFiles/ara.dir/power/area_model.cc.o" "gcc" "src/CMakeFiles/ara.dir/power/area_model.cc.o.d"
  "/root/repo/src/power/compute_unit_energy.cc" "src/CMakeFiles/ara.dir/power/compute_unit_energy.cc.o" "gcc" "src/CMakeFiles/ara.dir/power/compute_unit_energy.cc.o.d"
  "/root/repo/src/power/energy_accounting.cc" "src/CMakeFiles/ara.dir/power/energy_accounting.cc.o" "gcc" "src/CMakeFiles/ara.dir/power/energy_accounting.cc.o.d"
  "/root/repo/src/power/mcpat_like.cc" "src/CMakeFiles/ara.dir/power/mcpat_like.cc.o" "gcc" "src/CMakeFiles/ara.dir/power/mcpat_like.cc.o.d"
  "/root/repo/src/power/orion_like.cc" "src/CMakeFiles/ara.dir/power/orion_like.cc.o" "gcc" "src/CMakeFiles/ara.dir/power/orion_like.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/ara.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/ara.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/ara.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/ara.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/shared_link.cc" "src/CMakeFiles/ara.dir/sim/shared_link.cc.o" "gcc" "src/CMakeFiles/ara.dir/sim/shared_link.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/ara.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/ara.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/ara.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/ara.dir/sim/trace.cc.o.d"
  "/root/repo/src/workloads/ir_kernels.cc" "src/CMakeFiles/ara.dir/workloads/ir_kernels.cc.o" "gcc" "src/CMakeFiles/ara.dir/workloads/ir_kernels.cc.o.d"
  "/root/repo/src/workloads/medical.cc" "src/CMakeFiles/ara.dir/workloads/medical.cc.o" "gcc" "src/CMakeFiles/ara.dir/workloads/medical.cc.o.d"
  "/root/repo/src/workloads/navigation.cc" "src/CMakeFiles/ara.dir/workloads/navigation.cc.o" "gcc" "src/CMakeFiles/ara.dir/workloads/navigation.cc.o.d"
  "/root/repo/src/workloads/out_of_domain.cc" "src/CMakeFiles/ara.dir/workloads/out_of_domain.cc.o" "gcc" "src/CMakeFiles/ara.dir/workloads/out_of_domain.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/ara.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/ara.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/ara.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/ara.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
