file(REMOVE_RECURSE
  "libara.a"
)
