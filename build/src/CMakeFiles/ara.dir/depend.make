# Empty dependencies file for ara.
# This may be replaced when dependencies are built.
