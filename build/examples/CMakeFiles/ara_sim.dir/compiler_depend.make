# Empty compiler generated dependencies file for ara_sim.
# This may be replaced when dependencies are built.
