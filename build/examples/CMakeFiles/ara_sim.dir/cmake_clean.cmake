file(REMOVE_RECURSE
  "CMakeFiles/ara_sim.dir/ara_sim_cli.cpp.o"
  "CMakeFiles/ara_sim.dir/ara_sim_cli.cpp.o.d"
  "ara_sim"
  "ara_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ara_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
