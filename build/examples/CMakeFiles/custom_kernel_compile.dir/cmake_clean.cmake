file(REMOVE_RECURSE
  "CMakeFiles/custom_kernel_compile.dir/custom_kernel_compile.cpp.o"
  "CMakeFiles/custom_kernel_compile.dir/custom_kernel_compile.cpp.o.d"
  "custom_kernel_compile"
  "custom_kernel_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kernel_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
