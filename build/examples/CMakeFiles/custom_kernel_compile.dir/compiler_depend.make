# Empty compiler generated dependencies file for custom_kernel_compile.
# This may be replaced when dependencies are built.
