file(REMOVE_RECURSE
  "CMakeFiles/medical_pipeline.dir/medical_pipeline.cpp.o"
  "CMakeFiles/medical_pipeline.dir/medical_pipeline.cpp.o.d"
  "medical_pipeline"
  "medical_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
