# Empty dependencies file for medical_pipeline.
# This may be replaced when dependencies are built.
