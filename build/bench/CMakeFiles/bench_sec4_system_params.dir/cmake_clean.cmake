file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_system_params.dir/bench_sec4_system_params.cc.o"
  "CMakeFiles/bench_sec4_system_params.dir/bench_sec4_system_params.cc.o.d"
  "bench_sec4_system_params"
  "bench_sec4_system_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_system_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
