# Empty dependencies file for bench_sec4_system_params.
# This may be replaced when dependencies are built.
