file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_perf_per_area.dir/bench_fig09_perf_per_area.cc.o"
  "CMakeFiles/bench_fig09_perf_per_area.dir/bench_fig09_perf_per_area.cc.o.d"
  "bench_fig09_perf_per_area"
  "bench_fig09_perf_per_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_perf_per_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
