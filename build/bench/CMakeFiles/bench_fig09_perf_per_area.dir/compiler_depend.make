# Empty compiler generated dependencies file for bench_fig09_perf_per_area.
# This may be replaced when dependencies are built.
