file(REMOVE_RECURSE
  "CMakeFiles/bench_sec2_generations.dir/bench_sec2_generations.cc.o"
  "CMakeFiles/bench_sec2_generations.dir/bench_sec2_generations.cc.o.d"
  "bench_sec2_generations"
  "bench_sec2_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec2_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
