file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_ring_width.dir/bench_sec53_ring_width.cc.o"
  "CMakeFiles/bench_sec53_ring_width.dir/bench_sec53_ring_width.cc.o.d"
  "bench_sec53_ring_width"
  "bench_sec53_ring_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_ring_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
