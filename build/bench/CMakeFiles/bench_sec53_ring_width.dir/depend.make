# Empty dependencies file for bench_sec53_ring_width.
# This may be replaced when dependencies are built.
