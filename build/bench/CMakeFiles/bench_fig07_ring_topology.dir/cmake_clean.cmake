file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_ring_topology.dir/bench_fig07_ring_topology.cc.o"
  "CMakeFiles/bench_fig07_ring_topology.dir/bench_fig07_ring_topology.cc.o.d"
  "bench_fig07_ring_topology"
  "bench_fig07_ring_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_ring_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
