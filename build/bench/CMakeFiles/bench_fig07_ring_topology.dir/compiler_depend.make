# Empty compiler generated dependencies file for bench_fig07_ring_topology.
# This may be replaced when dependencies are built.
