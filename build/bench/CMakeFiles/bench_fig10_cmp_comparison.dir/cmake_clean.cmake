file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cmp_comparison.dir/bench_fig10_cmp_comparison.cc.o"
  "CMakeFiles/bench_fig10_cmp_comparison.dir/bench_fig10_cmp_comparison.cc.o.d"
  "bench_fig10_cmp_comparison"
  "bench_fig10_cmp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cmp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
