# Empty dependencies file for bench_fig10_cmp_comparison.
# This may be replaced when dependencies are built.
