# Empty compiler generated dependencies file for bench_fig02_pipeline_energy.
# This may be replaced when dependencies are built.
