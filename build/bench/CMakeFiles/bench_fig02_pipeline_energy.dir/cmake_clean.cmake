file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_pipeline_energy.dir/bench_fig02_pipeline_energy.cc.o"
  "CMakeFiles/bench_fig02_pipeline_energy.dir/bench_fig02_pipeline_energy.cc.o.d"
  "bench_fig02_pipeline_energy"
  "bench_fig02_pipeline_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_pipeline_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
