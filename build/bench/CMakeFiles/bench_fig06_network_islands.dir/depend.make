# Empty dependencies file for bench_fig06_network_islands.
# This may be replaced when dependencies are built.
