file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_network_islands.dir/bench_fig06_network_islands.cc.o"
  "CMakeFiles/bench_fig06_network_islands.dir/bench_fig06_network_islands.cc.o.d"
  "bench_fig06_network_islands"
  "bench_fig06_network_islands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_network_islands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
