# Empty dependencies file for bench_fig08_perf_per_energy.
# This may be replaced when dependencies are built.
