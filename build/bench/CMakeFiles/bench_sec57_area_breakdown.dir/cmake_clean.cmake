file(REMOVE_RECURSE
  "CMakeFiles/bench_sec57_area_breakdown.dir/bench_sec57_area_breakdown.cc.o"
  "CMakeFiles/bench_sec57_area_breakdown.dir/bench_sec57_area_breakdown.cc.o.d"
  "bench_sec57_area_breakdown"
  "bench_sec57_area_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec57_area_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
