# Empty compiler generated dependencies file for bench_sec57_area_breakdown.
# This may be replaced when dependencies are built.
