# Empty dependencies file for bench_fig03_asic_energy.
# This may be replaced when dependencies are built.
