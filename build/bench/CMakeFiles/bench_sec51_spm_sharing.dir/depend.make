# Empty dependencies file for bench_sec51_spm_sharing.
# This may be replaced when dependencies are built.
