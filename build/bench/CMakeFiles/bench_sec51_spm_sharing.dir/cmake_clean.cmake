file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_spm_sharing.dir/bench_sec51_spm_sharing.cc.o"
  "CMakeFiles/bench_sec51_spm_sharing.dir/bench_sec51_spm_sharing.cc.o.d"
  "bench_sec51_spm_sharing"
  "bench_sec51_spm_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_spm_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
