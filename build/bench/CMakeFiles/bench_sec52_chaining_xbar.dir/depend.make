# Empty dependencies file for bench_sec52_chaining_xbar.
# This may be replaced when dependencies are built.
