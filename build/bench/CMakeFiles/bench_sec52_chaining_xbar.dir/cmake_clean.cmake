file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_chaining_xbar.dir/bench_sec52_chaining_xbar.cc.o"
  "CMakeFiles/bench_sec52_chaining_xbar.dir/bench_sec52_chaining_xbar.cc.o.d"
  "bench_sec52_chaining_xbar"
  "bench_sec52_chaining_xbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_chaining_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
