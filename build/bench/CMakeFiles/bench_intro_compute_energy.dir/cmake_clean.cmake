file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_compute_energy.dir/bench_intro_compute_energy.cc.o"
  "CMakeFiles/bench_intro_compute_energy.dir/bench_intro_compute_energy.cc.o.d"
  "bench_intro_compute_energy"
  "bench_intro_compute_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_compute_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
