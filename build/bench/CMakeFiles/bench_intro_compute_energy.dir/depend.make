# Empty dependencies file for bench_intro_compute_energy.
# This may be replaced when dependencies are built.
