# Empty dependencies file for bench_fig01_params.
# This may be replaced when dependencies are built.
