# Empty dependencies file for bench_sec54_spm_porting.
# This may be replaced when dependencies are built.
