file(REMOVE_RECURSE
  "CMakeFiles/bench_sec54_spm_porting.dir/bench_sec54_spm_porting.cc.o"
  "CMakeFiles/bench_sec54_spm_porting.dir/bench_sec54_spm_porting.cc.o.d"
  "bench_sec54_spm_porting"
  "bench_sec54_spm_porting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec54_spm_porting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
