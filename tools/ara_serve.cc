// ara_serve: persistent sweep-as-a-service daemon.
//
// Keeps one warm dse::ResultCache and PointCoalescer across requests and
// serves length-prefixed JSON sweep/point requests over a local AF_UNIX
// socket (protocol in src/serve/protocol.h). Every sweep goes through
// dse::run, so served results are bit-identical to the ara_* CLI tools.
//
// Usage:
//   ara_serve --socket PATH [--handlers N] [--queue N] [--sessions N]
//             [--jobs N] [--cache DIR] [--check[=BOOL]]
//             [--log FILE] [--log-max-bytes N] [--slow-ms N]
//
// SIGTERM/SIGINT trigger a graceful drain: in-flight and queued sweeps
// finish (their responses are delivered), new sweeps are rejected with a
// typed "draining" error, and the process exits 0.
#include <csignal>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>

#include "check/check.h"
#include "common/cli_options.h"
#include "serve/server.h"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_release); }

/// Digits-only count parser (cli_options.cc's parse_jobs_value rule):
/// std::stoul would abort the daemon on "--handlers two" and silently
/// wrap "-1" to a huge value.
bool parse_count(const std::string& text, unsigned long* out) {
  if (text.empty() || text[0] < '0' || text[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (errno == ERANGE || *end != '\0') return false;
  *out = v;
  return true;
}

void usage() {
  std::cout <<
      "ara_serve — persistent sweep service over a local socket\n"
      "  --socket PATH    AF_UNIX socket to listen on (required)\n"
      "  --handlers N     concurrent sweep handlers (default 2)\n"
      "  --queue N        waiting sweeps admitted beyond the executing\n"
      "                   ones; a full queue rejects with 'overloaded'\n"
      "                   (default 64)\n"
      "  --sessions N     concurrent client connections; one past the\n"
      "                   cap is rejected with 'overloaded' and closed\n"
      "                   (default 256)\n"
      "  --log-max-bytes N  rotate the --log file past this size\n"
      "                   (default 8 MiB; previous file kept as FILE.1)\n"
      "  --slow-ms N      flag requests slower than N ms with\n"
      "                   \"slow\":true in the log (default 0 = never)\n"
      << ara::common::CliOptions::help(ara::common::CliOptions::kJobs |
                                       ara::common::CliOptions::kCache |
                                       ara::common::CliOptions::kCheck |
                                       ara::common::CliOptions::kLog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ara;

  const auto cli = common::CliOptions::parse(
      argc, argv,
      common::CliOptions::kJobs | common::CliOptions::kCache |
          common::CliOptions::kCheck | common::CliOptions::kLog);
  if (!cli.ok()) {
    std::cerr << "error: " << cli.error << "\n";
    return 2;
  }
  if (cli.check) check::set_enabled(true);

  serve::ServerOptions opts;
  opts.jobs = cli.jobs == 0 ? 1 : cli.jobs;
  opts.cache_dir = cli.cache_dir;
  opts.log_path = cli.log_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        exit(2);
      }
      return argv[++i];
    };
    auto count = [&]() -> unsigned long {
      const std::string value = next();
      unsigned long v = 0;
      if (!parse_count(value, &v)) {
        std::cerr << arg << ": expected a non-negative integer, got '"
                  << value << "'\n";
        exit(2);
      }
      return v;
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--socket") {
      opts.socket_path = next();
    } else if (arg == "--handlers") {
      opts.handlers = static_cast<unsigned>(count());
    } else if (arg == "--queue") {
      opts.queue_capacity = count();
    } else if (arg == "--sessions") {
      opts.max_sessions = count();
    } else if (arg == "--log-max-bytes") {
      opts.log_max_bytes = count();
    } else if (arg == "--slow-ms") {
      opts.slow_ms = count();
    } else {
      std::cerr << "unknown option '" << arg << "' (see --help)\n";
      return 2;
    }
  }
  if (opts.socket_path.empty()) {
    std::cerr << "error: --socket PATH is required (see --help)\n";
    return 2;
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  // A client that vanishes before reading its response must surface as a
  // failed write (EPIPE), never as a process-killing SIGPIPE.
  struct sigaction ign{};
  ign.sa_handler = SIG_IGN;
  sigaction(SIGPIPE, &ign, nullptr);

  serve::Server server(opts);
  std::string error;
  if (!server.listen(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  server.start();
  if (!opts.log_path.empty() && server.request_log() != nullptr &&
      !server.request_log()->ok()) {
    std::cerr << "ara_serve: warning: cannot open request log '"
              << opts.log_path << "'; serving without a log\n";
  }
  std::cerr << "ara_serve: listening on " << opts.socket_path << " ("
            << opts.handlers << " handlers, " << opts.jobs
            << " jobs/sweep, queue " << opts.queue_capacity << ", cache "
            << (opts.cache_dir.empty() ? std::string("memory")
                                       : opts.cache_dir)
            << (opts.log_path.empty() ? std::string()
                                      : ", log " + opts.log_path)
            << ")\n";
  const int rc = server.serve(g_signal);
  std::cerr << "ara_serve: drained, exiting\n";
  return rc;
}
