// ara_analyze — whole-program static analysis for the ara tree.
//
// Where ara_lint (tools/lint_core.h) judges one translation unit at a
// time, this engine parses *every* first-party file once into a shared
// token/line model and runs analyses that only make sense across files:
//
//   include-cycle        the #include graph contains a cycle
//   transitive-layering  a file's include *closure* escapes the layer
//                        matrix even though every individual edge looks
//                        legal to the per-file linter (e.g. a sim/ file
//                        reaching serve/ through an unlayered tools/
//                        header)
//   lock-order           the global mutex acquisition-order graph
//                        (common::MutexLock sites, grouped per enclosing
//                        function/class) contains a cycle — a potential
//                        static deadlock
//   stat-grammar         a StatRegistry registration literal violates the
//                        <subsystem>.<id>.<stat> grammar
//   stat-undocumented    a stat name is emitted by src/ but never appears
//                        in the documentation set (DESIGN.md / README.md)
//   stat-phantom         the documentation names a stat that nothing in
//                        src/ emits (doc drift)
//   proto-unproduced     a JSON request field the serve protocol parses
//                        is never produced by the in-repo client or the
//                        PointSpec label surface
//   proto-unparsed       a JSON field a client/label site exposes that
//                        the protocol never produces/parses back
//   stale-baseline       a baseline entry no longer matches any finding
//                        (never baselinable itself, so baselines can't rot)
//
// The engine is deliberately dependency-free (no libclang, no link
// against the simulator library) so it builds and runs even while the
// tree it analyses is broken. tools/ara_analyze.cc is the CLI;
// tests/analyze_test.cc + tests/analyze_fixtures/ pin each analysis both
// firing on a seeded violation and staying silent on the corrected twin.
//
// The lexer here is also the engine behind ara_lint: lint_core consumes
// lex() so both tools agree exactly on what is code, what is comment,
// and what is string — including block comments, raw strings (all
// prefixes), and backslash-newline line splices.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ara::analyze {

// --------------------------------------------------------------- lexer

/// Per-physical-line views of one file, shared with lint_core. `raw` is
/// the input verbatim; `code` has comments AND string/char-literal
/// contents blanked (pattern matching never sees prose); `text` has only
/// comments blanked (analyses that must read literals use this one).
struct SourceView {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> text;
};

/// One lexical token. String/char tokens carry their *decoded* contents
/// (simple escapes resolved, raw-string bodies verbatim) so analyses can
/// pattern-match the value the program actually sees.
struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;  // 1-based physical line the token starts on
};

struct LexedSource {
  SourceView view;
  std::vector<Token> tokens;
};

/// Lex one translation unit. Handles //- and /**/-comments, string and
/// char literals (with escapes and digit separators), raw strings with
/// any encoding prefix (R, u8R, uR, UR, LR), and backslash-newline line
/// splices in every state except raw strings — so a `// comment \`
/// swallows its continuation line exactly as the real preprocessor does.
LexedSource lex(const std::string& content);

// -------------------------------------------------- layering model
// Single source of truth for the layer architecture, consumed by both
// lint_core (direct-edge rule) and the transitive analysis here.

std::vector<std::string> split_path(const std::string& path);

/// The known src/<layer>/ directory names.
const std::set<std::string>& known_layers();

/// Layer dependency allowlist: src/<key>/ may #include "dep/..." for
/// every dep in its set (plus itself and std headers). This is the
/// project's architecture, frozen: adding an edge is a deliberate
/// one-line amendment reviewed together with DESIGN.md "Static analysis".
const std::map<std::string, std::set<std::string>>& layer_deps();

/// The layer a path belongs to ("" when not under a src/<layer>/ tree).
/// The last src/<layer> match wins so fixture trees nest correctly.
std::string layer_of(const std::string& path);

/// True when `path`'s trailing components equal `parts` (e.g.
/// {"src","obs","clock.cc"}) — how file-scoped exemptions match both the
/// real tree and fixture corpora.
bool path_ends_with(const std::string& path,
                    const std::vector<std::string>& parts);

// ------------------------------------------------------------- corpus

struct SourceFile {
  std::string path;
  std::string layer;  // "" when unlayered (tools/, bench/, examples/)
  LexedSource lexed;
  /// Quoted #include targets with their 1-based line numbers.
  std::vector<std::pair<std::string, int>> includes;
};

struct DocFile {
  std::string path;
  std::string content;
};

/// The whole-program model: every .h/.cc/.cpp under `roots` (files or
/// directories, recursive), lexed once, in sorted path order, plus the
/// documentation set the stat analysis cross-references.
struct Corpus {
  std::vector<SourceFile> files;
  std::vector<DocFile> docs;
};

Corpus load_corpus(const std::vector<std::string>& roots,
                   const std::vector<std::string>& doc_paths);

/// In-memory corpus entry point for tests.
void add_source(Corpus* corpus, const std::string& path,
                const std::string& content);

// ----------------------------------------------------------- findings

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  /// Stable baseline key: rule + canonical detail, no line numbers and
  /// no absolute paths, so a checked-in baseline survives both line
  /// churn and checkout location.
  std::string key;
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// The full analysis catalog, id-sorted.
const std::vector<RuleInfo>& rules();

struct AnalyzeResult {
  std::vector<Finding> findings;  // unbaselined, file/line ordered
  std::size_t files_scanned = 0;
  std::size_t docs_scanned = 0;
  std::size_t baselined = 0;  // findings silenced by the baseline file
};

// The four analyses, individually callable (tests exercise them in
// isolation); analyze() runs them all and applies the baseline.
void analyze_includes(const Corpus& corpus, std::vector<Finding>* out);
void analyze_lock_order(const Corpus& corpus, std::vector<Finding>* out);
void analyze_stats(const Corpus& corpus, std::vector<Finding>* out);
void analyze_protocol(const Corpus& corpus, std::vector<Finding>* out);

/// Parse a baseline file: one key per line, '#' comments, blank lines
/// ignored.
std::set<std::string> parse_baseline(const std::string& content);

/// Run every analysis; findings whose key is baselined are counted and
/// dropped, and baseline entries matching nothing become stale-baseline
/// findings (anchored at `baseline_path`).
AnalyzeResult analyze(const Corpus& corpus,
                      const std::set<std::string>& baseline,
                      const std::string& baseline_path = "");

/// "file:line: rule: message" per finding + a one-line summary.
std::string to_text(const AnalyzeResult& result);

/// Machine-readable findings (strict RFC 8259; tests validate through
/// obs::validate_json).
std::string to_json(const AnalyzeResult& result);

/// Baseline-file body for --write-baseline: every finding's key, sorted
/// and deduplicated, under a header comment.
std::string to_baseline(const AnalyzeResult& result);

}  // namespace ara::analyze
