#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "analyze_core.h"

namespace ara::lint {

namespace {

// The comment/string/raw-string-aware views come from the shared
// whole-program lexer (tools/analyze_core.h), so ara_lint and ara_analyze
// agree exactly on what is code, what is comment, and what is literal —
// including backslash-newline splices and all raw-string prefixes, which
// the old per-line scanner here got wrong.
using FileView = ara::analyze::SourceView;
using ara::analyze::known_layers;
using ara::analyze::layer_deps;
using ara::analyze::split_path;

// ------------------------------------------------------------------ catalog

const std::vector<RuleInfo> kRules = {
    {"bad-suppression",
     "an ara-lint allow() comment names a rule id that does not exist"},
    {"layering",
     "#include crosses a layer boundary not in the dependency allowlist"},
    {"no-deprecated-api",
     "references a removed API (run_point/run_sweep); use dse::run"},
    {"no-naked-lock",
     "direct mutex .lock()/.unlock(); RAII guards (common::MutexLock) only"},
    {"no-rand",
     "nondeterministic or non-portable randomness; use sim::Rng"},
    {"no-raw-new-delete",
     "raw new/delete outside the sanctioned slab allocators"},
    {"no-unordered-iter",
     "iteration over an unordered container (order feeds results/stats)"},
    {"no-wall-clock",
     "host wall-clock read in simulator code outside sanctioned telemetry"},
    {"stat-naming",
     "StatRegistry registration not named <subsystem>.<id>.<stat>"},
};

bool known_rule(const std::string& id) {
  for (const auto& r : kRules) {
    if (r.id == id) return true;
  }
  return false;
}

// ------------------------------------------------- comment/string stripping

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ----------------------------------------------------------- suppressions

/// Rule ids allowed on a raw line, from allow() markers — e.g.
/// "// ara-lint: allow(no-rand, layering)". Unknown ids are reported
/// through `out` as bad-suppression findings.
std::set<std::string> line_suppressions(const std::string& raw,
                                        const std::string& path, int line,
                                        std::vector<Finding>* out) {
  std::set<std::string> ids;
  static const std::string kMarker = std::string("ara-lint") + ":";
  std::size_t pos = raw.find(kMarker);
  while (pos != std::string::npos) {
    std::size_t open = raw.find("allow" + std::string("("), pos);
    if (open == std::string::npos) break;
    open += 6;
    const std::size_t close = raw.find(')', open);
    if (close == std::string::npos) break;
    std::string id;
    for (std::size_t i = open; i <= close; ++i) {
      const char c = raw[i];
      if (c == ',' || c == ')') {
        if (!id.empty()) {
          if (known_rule(id)) {
            ids.insert(id);
          } else {
            out->push_back({path, line, "bad-suppression",
                            "suppression names unknown rule '" + id + "'"});
          }
          id.clear();
        }
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        id += c;
      }
    }
    pos = raw.find(kMarker, close);
  }
  return ids;
}

// ------------------------------------------------------------ path scoping
// split_path / known_layers / layer_deps now live in analyze_core (the
// single source of truth for the layer architecture, shared with the
// transitive analysis in ara_analyze).

/// Where a file sits for rule-scoping purposes.
struct Scope {
  bool in_src = false;     // under a src/ tree (simulator library code)
  std::string layer;       // src/<layer>/... when in_src
};

Scope classify(const std::string& path) {
  Scope s;
  s.layer = ara::analyze::layer_of(path);
  s.in_src = !s.layer.empty();
  return s;
}

// ------------------------------------------------------------ match helpers

/// Call `fn(line_index)` for every whole-word occurrence of `word`.
template <typename Fn>
void for_each_word(const std::vector<std::string>& lines,
                   const std::string& word, Fn fn) {
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& s = lines[li];
    std::size_t pos = s.find(word);
    while (pos != std::string::npos) {
      const bool lb = pos == 0 || !ident_char(s[pos - 1]);
      const bool rb = pos + word.size() >= s.size() ||
                      !ident_char(s[pos + word.size()]);
      if (lb && rb) fn(li, pos);
      pos = s.find(word, pos + 1);
    }
  }
}

char prev_nonspace(const std::string& s, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(s[pos]))) return s[pos];
  }
  return '\0';
}

char next_nonspace(const std::string& s, std::size_t pos) {
  while (pos < s.size()) {
    if (!std::isspace(static_cast<unsigned char>(s[pos]))) return s[pos];
    ++pos;
  }
  return '\0';
}

// ------------------------------------------------------------------- rules

void rule_no_rand(const Scope& scope, const FileView& v,
                  const std::string& path, std::vector<Finding>* out) {
  if (!scope.in_src) return;
  static const char* const kBanned[] = {
      "rand",          "srand",       "drand48",
      "lrand48",       "random_device", "mt19937",
      "mt19937_64",    "minstd_rand", "default_random_engine",
      "random_shuffle", "uniform_int_distribution",
      "uniform_real_distribution"};
  for (const char* word : kBanned) {
    for_each_word(v.code, word, [&](std::size_t li, std::size_t) {
      out->push_back({path, static_cast<int>(li + 1), "no-rand",
                      std::string("'") + word +
                          "' is a banned nondeterminism source; use sim::Rng "
                          "(portable xoshiro256**, seeded per stream)"});
    });
  }
}

/// The one sanctioned wall-clock site: obs::MonotonicClock::host() in
/// src/obs/clock.cc. Everything else that wants real time takes a
/// MonotonicClock& (tests inject obs::FakeClock), so the allowlist is a
/// single path rather than per-line allow comments scattered through the
/// telemetry layer. Matched on the trailing components so fixture trees
/// (tests/lint_fixtures/src/obs/clock.cc) exercise the same exemption.
bool sanctioned_clock_site(const std::string& path) {
  const auto parts = split_path(path);
  const std::size_t n = parts.size();
  return n >= 3 && parts[n - 3] == "src" && parts[n - 2] == "obs" &&
         parts[n - 1] == "clock.cc";
}

void rule_no_wall_clock(const Scope& scope, const FileView& v,
                        const std::string& path, std::vector<Finding>* out) {
  if (!scope.in_src) return;
  if (sanctioned_clock_site(path)) return;
  static const char* const kBanned[] = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "gettimeofday", "clock_gettime", "localtime",
      "gmtime",       "timespec_get"};
  auto report = [&](std::size_t li, const std::string& what) {
    out->push_back({path, static_cast<int>(li + 1), "no-wall-clock",
                    "'" + what +
                        "' reads host wall-clock in simulator code; "
                        "simulated time comes from Simulator::now() and "
                        "real-time telemetry from obs::MonotonicClock "
                        "(src/obs/clock.cc is the sole exempt site). Other "
                        "sanctioned sites carry an explicit ara-lint allow "
                        "comment"});
  };
  for (const char* word : kBanned) {
    for_each_word(v.code, word,
                  [&](std::size_t li, std::size_t) { report(li, word); });
  }
  // Bare time(...) / clock(...) calls: flag only non-member uses so a
  // method named time() on a simulator type stays legal.
  for (const char* word : {"time", "clock"}) {
    for_each_word(v.code, word, [&](std::size_t li, std::size_t pos) {
      const std::string& s = v.code[li];
      if (next_nonspace(s, pos + std::string(word).size()) != '(') return;
      const char before = pos == 0 ? '\0' : s[pos - 1];
      if (before == '.' || before == '>') return;  // member call
      report(li, word);
    });
  }
}

void rule_no_unordered_iter(const Scope& scope, const FileView& v,
                            const std::string& path,
                            std::vector<Finding>* out) {
  if (!scope.in_src) return;
  // Pass 1: names declared with an unordered container type in this file.
  std::set<std::string> names;
  static const std::regex kDecl(
      R"(unordered_(?:map|set|multimap|multiset)\s*<)");
  for (const auto& line : v.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      // Match the template argument list's angle brackets, then read the
      // declared name (skipping &, * and const-ness).
      std::size_t i = static_cast<std::size_t>(it->position()) + it->length();
      int depth = 1;
      while (i < line.size() && depth > 0) {
        if (line[i] == '<') ++depth;
        if (line[i] == '>') --depth;
        ++i;
      }
      if (depth != 0) continue;  // declaration spans lines; heuristic bails
      while (i < line.size() &&
             (std::isspace(static_cast<unsigned char>(line[i])) ||
              line[i] == '&' || line[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < line.size() && ident_char(line[i])) name += line[i++];
      if (name == "iterator" || name == "const_iterator") continue;
      if (!name.empty()) names.insert(name);
    }
  }
  if (names.empty()) return;

  // Pass 2: range-for over, or .begin() on, any of those names.
  static const std::regex kRangeFor(
      R"(\bfor\s*\([^;()]*[^:\s]\s*:\s*(?:\*|&)?\s*((?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*[A-Za-z_]\w*)\s*\))");
  static const std::regex kBegin(
      R"(([A-Za-z_]\w*)\s*\.\s*(?:c|r|cr)?begin\s*\()");
  for (std::size_t li = 0; li < v.code.size(); ++li) {
    const std::string& line = v.code[li];
    auto flag = [&](const std::string& name) {
      out->push_back(
          {path, static_cast<int>(li + 1), "no-unordered-iter",
           "iterating unordered container '" + name +
               "': bucket order is implementation-defined, so anything "
               "derived from it (stats, exports, scheduling) loses "
               "determinism. Iterate a sorted copy or use std::map"});
    };
    for (std::sregex_iterator it(line.begin(), line.end(), kRangeFor), end;
         it != end; ++it) {
      std::string expr = (*it)[1].str();
      const std::size_t dot = expr.find_last_of(".>");
      const std::string last =
          dot == std::string::npos ? expr : expr.substr(dot + 1);
      if (names.count(last) != 0) flag(last);
    }
    for (std::sregex_iterator it(line.begin(), line.end(), kBegin), end;
         it != end; ++it) {
      if (names.count((*it)[1].str()) != 0) flag((*it)[1].str());
    }
  }
}

void rule_no_raw_new_delete(const FileView& v, const std::string& path,
                            std::vector<Finding>* out) {
  for_each_word(v.code, "new", [&](std::size_t li, std::size_t pos) {
    const std::string& s = v.code[li];
    if (next_nonspace(s, 0) == '#') return;  // #include <new> etc.
    // `operator new` overloads declare the allocator itself.
    if (pos >= 9 && s.compare(pos - 9, 8, "operator") == 0) return;
    out->push_back({path, static_cast<int>(li + 1), "no-raw-new-delete",
                    "raw 'new' outside a slab allocator; simulator "
                    "allocations go through the kernel slab / free-list "
                    "(sim/event_queue.h) or value containers"});
  });
  for_each_word(v.code, "delete", [&](std::size_t li, std::size_t pos) {
    const std::string& s = v.code[li];
    if (next_nonspace(s, 0) == '#') return;
    if (prev_nonspace(s, pos) == '=') return;  // = delete; (deleted member)
    if (pos >= 9 && s.compare(pos - 9, 8, "operator") == 0) return;
    out->push_back({path, static_cast<int>(li + 1), "no-raw-new-delete",
                    "raw 'delete' outside a slab allocator; pair every "
                    "allocation with RAII ownership instead"});
  });
}

void rule_stat_naming(const Scope& scope, const FileView& v,
                      const std::string& path, std::vector<Finding>* out) {
  if (!scope.in_src) return;
  static const std::regex kReg(
      R"re((?:\.|->)\s*(counter|accumulator|histogram|set_counter)\s*\(\s*"([^"]*)"\s*(\+?))re");
  static const std::regex kFull(R"([a-z][a-z0-9_]*(\.[a-z0-9_]+)+)");
  static const std::regex kPartial(R"([a-z][a-z0-9_.]*)");
  for (std::size_t li = 0; li < v.text.size(); ++li) {
    const std::string& line = v.text[li];
    for (std::sregex_iterator it(line.begin(), line.end(), kReg), end;
         it != end; ++it) {
      const std::string literal = (*it)[2].str();
      const bool concatenated = (*it)[3].str() == "+";
      const bool ok = concatenated ? std::regex_match(literal, kPartial)
                                   : std::regex_match(literal, kFull);
      if (!ok) {
        out->push_back(
            {path, static_cast<int>(li + 1), "stat-naming",
             "stat registration \"" + literal +
                 "\" must follow <subsystem>.<id>.<stat> (lowercase "
                 "dot-separated segments, e.g. \"noc.router.3.flits\")"});
      }
    }
  }
}

/// The one sanctioned cross-layer include outside layer_deps:
/// src/dse/search.cc may include "check/..." — the search optimizer
/// reuses check::PointSampler (the fuzzer's deterministic design-space
/// stream) so searched and fuzzed points draw from identical machinery.
/// A blanket dse -> check edge would legalize a dependency cycle
/// (check already depends on dse), so the exemption is file-scoped,
/// matched on trailing components like sanctioned_clock_site so fixture
/// trees (tests/lint_fixtures/src/dse/search.cc) exercise it.
bool sanctioned_search_sampler_site(const std::string& path) {
  const auto parts = split_path(path);
  const std::size_t n = parts.size();
  return n >= 3 && parts[n - 3] == "src" && parts[n - 2] == "dse" &&
         parts[n - 1] == "search.cc";
}

void rule_layering(const Scope& scope, const FileView& v,
                   const std::string& path, std::vector<Finding>* out) {
  if (!scope.in_src || scope.layer.empty()) return;
  const auto deps_it = layer_deps().find(scope.layer);
  if (deps_it == layer_deps().end()) return;
  static const std::regex kInclude(R"(^\s*#\s*include\s*"([^"/]+)/)");
  for (std::size_t li = 0; li < v.text.size(); ++li) {
    std::smatch m;
    if (!std::regex_search(v.text[li], m, kInclude)) continue;
    const std::string target = m[1].str();
    if (target == scope.layer || known_layers().count(target) == 0) continue;
    if (scope.layer == "dse" && target == "check" &&
        sanctioned_search_sampler_site(path)) {
      continue;
    }
    if (deps_it->second.count(target) == 0) {
      out->push_back(
          {path, static_cast<int>(li + 1), "layering",
           "src/" + scope.layer + "/ must not include \"" + target +
               "/...\": the edge is outside the layer dependency allowlist "
               "(tools/analyze_core.cc layer_deps; amend it deliberately or "
               "invert the dependency)"});
    }
  }
}

void rule_no_naked_lock(const FileView& v, const std::string& path,
                        std::vector<Finding>* out) {
  static const std::regex kLock(
      R"((?:\.|->)\s*((?:try_)?(?:un)?lock)\s*\()");
  for (std::size_t li = 0; li < v.code.size(); ++li) {
    const std::string& line = v.code[li];
    for (std::sregex_iterator it(line.begin(), line.end(), kLock), end;
         it != end; ++it) {
      out->push_back({path, static_cast<int>(li + 1), "no-naked-lock",
                      "naked ." + (*it)[1].str() +
                          "() call; take mutexes through an RAII guard "
                          "(common::MutexLock) so no exit path leaks the "
                          "lock"});
    }
  }
}

void rule_no_deprecated_api(const FileView& v, const std::string& path,
                            std::vector<Finding>* out) {
  for (const char* word : {"run_point", "run_sweep"}) {
    for_each_word(v.code, word, [&](std::size_t li, std::size_t) {
      out->push_back({path, static_cast<int>(li + 1), "no-deprecated-api",
                      std::string("'") + word +
                          "' was removed in favour of dse::run(SweepRequest) "
                          "— see DESIGN.md \"SweepRequest migration\""});
    });
  }
}

// ---------------------------------------------------------------- plumbing

void json_escape(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 std::size_t* suppressed) {
  const FileView v = ara::analyze::lex(content).view;
  const Scope scope = classify(path);

  std::vector<Finding> raw_findings;
  rule_no_rand(scope, v, path, &raw_findings);
  rule_no_wall_clock(scope, v, path, &raw_findings);
  rule_no_unordered_iter(scope, v, path, &raw_findings);
  rule_no_raw_new_delete(v, path, &raw_findings);
  rule_stat_naming(scope, v, path, &raw_findings);
  rule_layering(scope, v, path, &raw_findings);
  rule_no_naked_lock(v, path, &raw_findings);
  rule_no_deprecated_api(v, path, &raw_findings);

  // Suppressions: same-line allow(), or an allow() alone on the previous
  // line (for statements too long to share a line with the comment).
  // Unknown rule ids become bad-suppression findings (never suppressible).
  std::vector<Finding> bad;
  std::vector<std::set<std::string>> allow(v.raw.size());
  for (std::size_t li = 0; li < v.raw.size(); ++li) {
    allow[li] = line_suppressions(v.raw[li], path, static_cast<int>(li + 1),
                                  &bad);
  }
  auto is_comment_only = [&](std::size_t li) {
    const std::string& code = v.code[li];
    return std::all_of(code.begin(), code.end(), [](char c) {
      return std::isspace(static_cast<unsigned char>(c)) != 0;
    });
  };

  std::vector<Finding> out;
  for (auto& f : raw_findings) {
    const std::size_t li = static_cast<std::size_t>(f.line - 1);
    bool silenced = li < allow.size() && allow[li].count(f.rule) != 0;
    if (!silenced && li > 0 && is_comment_only(li - 1) &&
        allow[li - 1].count(f.rule) != 0) {
      silenced = true;
    }
    if (silenced) {
      if (suppressed != nullptr) ++*suppressed;
    } else {
      out.push_back(std::move(f));
    }
  }
  out.insert(out.end(), bad.begin(), bad.end());
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

LintResult lint_paths(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  LintResult result;

  std::vector<std::string> files;
  auto consider = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
      files.push_back(p.generic_string());
    }
  };
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec)) consider(it->path());
      }
    } else if (fs::is_regular_file(root, ec)) {
      consider(fs::path(root));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    ++result.files_scanned;
    auto findings = lint_source(file, buf.str(), &result.suppressed);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
  }
  return result;
}

std::string to_text(const LintResult& result) {
  std::string out;
  for (const auto& f : result.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
           f.message + "\n";
  }
  out += "ara_lint: " + std::to_string(result.findings.size()) +
         " finding(s) in " + std::to_string(result.files_scanned) +
         " file(s) scanned, " + std::to_string(result.suppressed) +
         " suppressed\n";
  return out;
}

std::string to_json(const LintResult& result) {
  std::string out = "{\"findings\":[";
  bool first = true;
  for (const auto& f : result.findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"file\":\"";
    json_escape(&out, f.file);
    out += "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"";
    json_escape(&out, f.rule);
    out += "\",\"message\":\"";
    json_escape(&out, f.message);
    out += "\"}";
  }
  out += "],\"files_scanned\":" + std::to_string(result.files_scanned) +
         ",\"suppressed\":" + std::to_string(result.suppressed) + "}\n";
  return out;
}

}  // namespace ara::lint
