// ara_fuzz: deterministic config/workload fuzzer for the simulator.
//
// For every seed in [--seed-base, --seed-base + --seeds):
//  1. kernel replica check — a randomized schedule (including events that
//     schedule follow-up events) is dispatched through the production
//     calendar-queue Simulator and through a legacy std::function +
//     priority_queue replica; their (id, tick) dispatch checksums must
//     match exactly;
//  2. design-point cross-check — check::generate_point samples a valid
//     random ArchConfig + Workload and check::cross_check runs it with
//     runtime invariants enabled at jobs 1/2/8 plus a cached-vs-fresh
//     ResultCache pass, requiring bit-identical results throughout;
//  3. sharded replica — check::shard_cross_check re-runs the point under
//     the partitioned kernel at shards 2/4 (byte-compared against serial),
//     cross-checks a seed-derived cross-traffic script through
//     sim::ShardedSimulator at workers 1/2/4 by dispatch checksum, and
//     proves the negative probes (injected merge inversion, lookahead
//     violation) are caught. --shard-only runs just this layer (the
//     `shard` ctest tier).
//
// A failing seed is greedily minimized (halving invocation count, DFG
// size, then island count while the failure reproduces) and written as a
// repro file under --repro-dir. Exit status 1 when any seed fails.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include "check/check.h"
#include "check/fuzz.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace {

using ara::Tick;

/// The pre-PR3 event kernel: heap-allocated std::function callbacks on a
/// (tick, seq) priority queue. Semantically the reference implementation of
/// the dispatch-order contract; kept here (not in the library) because its
/// only job is to disagree with the calendar queue when one of them breaks.
class LegacyKernel {
 public:
  Tick now() const { return now_; }

  void schedule_at(Tick at, std::function<void()> fn) {
    queue_.push(Entry{at, next_seq_++, std::move(fn)});
  }

  void run() {
    while (!queue_.empty()) {
      Entry e = queue_.top();
      queue_.pop();
      now_ = e.at;
      ++processed_;
      e.fn();
    }
  }

  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    Tick at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

/// FNV-1a over the (event id, dispatch tick) sequence of a randomized
/// schedule. Both kernels run the identical script: `initial` root events
/// at random ticks (some far enough out to exercise the calendar queue's
/// overflow heap), and every event deterministically decides — from its id
/// alone — whether to schedule up to two follow-ups relative to now().
template <class Kernel>
std::uint64_t dispatch_checksum(std::uint64_t seed, int initial) {
  Kernel kernel;
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };

  std::function<void(std::uint64_t, int)> arm = [&](std::uint64_t id,
                                                    int depth) {
    mix(id);
    mix(kernel.now());
    if (depth >= 3) return;
    const std::uint64_t r = id * 0x9e3779b97f4a7c15ull;
    if ((r >> 8) % 10 < 4) {
      const Tick delay = 1 + static_cast<Tick>((r >> 16) % 6000);
      const std::uint64_t child = id * 31 + 7;
      kernel.schedule_at(kernel.now() + delay,
                         [&, child, depth] { arm(child, depth + 1); });
    }
    if ((r >> 40) % 10 < 2) {
      const std::uint64_t child = id * 37 + 11;
      kernel.schedule_at(kernel.now(),  // same-tick: seq order must hold
                         [&, child, depth] { arm(child, depth + 1); });
    }
  };

  ara::sim::Rng rng(seed);
  for (int i = 0; i < initial; ++i) {
    const std::uint64_t id = static_cast<std::uint64_t>(i) + 1;
    // Mostly near-future (wheel), with a tail beyond the 4096-tick window
    // (overflow heap) — the migration boundary is where order bugs live.
    const Tick at = rng.next_bool(0.85) ? rng.next_below(3000)
                                        : 3000 + rng.next_below(40000);
    kernel.schedule_at(at, [&, id] { arm(id, 0); });
  }
  kernel.run();
  mix(kernel.events_processed());
  return h;
}

struct Options {
  std::uint64_t seeds = 32;
  std::uint64_t seed_base = 1;
  std::string repro_dir = "fuzz_repros";
  int kernel_events = 1500;
  bool verbose = false;
  bool shard_only = false;
};

bool parse_u64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s < '0' || *s > '9') return false;
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

int usage(int code) {
  std::cout
      << "usage: ara_fuzz [options]\n"
         "  --seeds N       seeds to fuzz (default 32)\n"
         "  --seed-base N   first seed (default 1)\n"
         "  --repro-dir D   directory for failing-seed repro files\n"
         "                  (default fuzz_repros)\n"
         "  --shard-only    run only the sharded-replica layer\n"
         "  --verbose       per-seed progress\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--shard-only") {
      opt.shard_only = true;
    } else if (arg == "--seeds") {
      if (!parse_u64(value(), &opt.seeds)) return usage(2);
    } else if (arg == "--seed-base") {
      if (!parse_u64(value(), &opt.seed_base)) return usage(2);
    } else if (arg == "--repro-dir") {
      const char* v = value();
      if (v == nullptr) return usage(2);
      opt.repro_dir = v;
    } else {
      std::cerr << "ara_fuzz: unknown flag '" << arg << "'\n";
      return usage(2);
    }
  }

  namespace check = ara::check;
  std::uint64_t kernel_failures = 0;
  std::uint64_t point_failures = 0;
  std::uint64_t shard_failures = 0;

  for (std::uint64_t s = opt.seed_base; s < opt.seed_base + opt.seeds; ++s) {
    const check::FuzzLimits full{};
    check::FuzzPoint point = check::generate_point(s, full);

    if (!opt.shard_only) {
      // Layer 1: dispatch-order differential against the legacy kernel.
      const std::uint64_t new_sum =
          dispatch_checksum<ara::sim::Simulator>(s, opt.kernel_events);
      const std::uint64_t old_sum =
          dispatch_checksum<LegacyKernel>(s, opt.kernel_events);
      if (new_sum != old_sum) {
        ++kernel_failures;
        std::cerr << "seed " << s << ": KERNEL DIVERGENCE — calendar queue "
                  << std::hex << new_sum << " vs legacy replica " << old_sum
                  << std::dec << "\n";
      }
    }

    // Layer 3: sharded replica of the same point through the partitioned
    // kernel, plus the kernel-level checksum differential.
    const std::string sharded = check::shard_cross_check(point);
    if (!sharded.empty()) {
      ++shard_failures;
      std::error_code ec;
      std::filesystem::create_directories(opt.repro_dir, ec);
      const std::string path =
          opt.repro_dir + "/shard-" + std::to_string(s) + ".txt";
      std::ofstream repro(path);
      repro << check::repro_text(point, full, sharded);
      std::cerr << "seed " << s << ": SHARD FAIL — " << sharded
                << "; repro: " << path << "\n";
    }
    if (opt.shard_only) {
      if (opt.verbose && sharded.empty()) {
        std::cout << "seed " << s << ": shard ok ("
                  << point.config.num_islands << " islands)\n";
      }
      continue;
    }

    // Layer 2: full-system differential with invariants on.
    std::string failure = check::cross_check(point);
    if (failure.empty()) {
      if (opt.verbose) {
        std::cout << "seed " << s << ": ok (" << point.config.num_islands
                  << " islands, " << point.workload.dfg.size() << " tasks, "
                  << point.workload.invocations << " invocations)\n";
      }
      continue;
    }

    // Greedy minimization: keep halving one limit at a time while the
    // failure still reproduces; the repro file records the smallest point.
    ++point_failures;
    check::FuzzLimits lim = full;
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (int knob = 0; knob < 3; ++knob) {
        check::FuzzLimits trial = lim;
        std::uint32_t* field =
            knob == 0 ? &trial.max_invocations
                      : (knob == 1 ? &trial.max_tasks : &trial.max_islands);
        const std::uint32_t floor = knob == 1 ? 3u : (knob == 0 ? 2u : 1u);
        if (*field / 2 < floor || *field / 2 == *field) continue;
        *field /= 2;
        check::FuzzPoint smaller = check::generate_point(s, trial);
        const std::string msg = check::cross_check(smaller);
        if (!msg.empty()) {
          lim = trial;
          point = std::move(smaller);
          failure = msg;
          shrunk = true;
        }
      }
    }

    std::error_code ec;
    std::filesystem::create_directories(opt.repro_dir, ec);
    const std::string path =
        opt.repro_dir + "/fuzz-" + std::to_string(s) + ".txt";
    std::ofstream repro(path);
    repro << check::repro_text(point, lim, failure);
    std::cerr << "seed " << s << ": FAIL — " << failure << "\n"
              << "  minimized to " << point.config.num_islands
              << " islands / " << point.workload.dfg.size() << " tasks / "
              << point.workload.invocations << " invocations; repro: "
              << path << "\n";
  }

  std::cout << "ara_fuzz: " << opt.seeds << " seeds, "
            << (opt.seeds - point_failures) << " clean, " << point_failures
            << " point failures, " << kernel_failures
            << " kernel divergences, " << shard_failures
            << " shard divergences\n";
  return (point_failures + kernel_failures + shard_failures) == 0 ? 0 : 1;
}
