// Strict JSON validity checker for exporter output (traces, metrics).
//
//   ara_json_check FILE [FILE...]
//
// Exits 0 when every file parses as exactly one RFC 8259 JSON value,
// nonzero otherwise. Used by the CLI smoke ctest to validate the files
// written by `ara_sim --trace ... --metrics ...` without any external
// JSON dependency.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json_check.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE [FILE...]\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (ara::obs::validate_json(buf.str(), &error)) {
      std::printf("%s: valid JSON (%zu bytes)\n", argv[i], buf.str().size());
    } else {
      std::fprintf(stderr, "%s: INVALID JSON: %s\n", argv[i], error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
