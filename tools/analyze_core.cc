#include "analyze_core.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <regex>
#include <sstream>

namespace ara::analyze {

namespace {

// ------------------------------------------------------------------ catalog

const std::vector<RuleInfo> kRules = {
    {"include-cycle", "the #include graph contains a cycle"},
    {"lock-order",
     "the global mutex acquisition-order graph contains a cycle (potential "
     "static deadlock)"},
    {"proto-unparsed",
     "a JSON field a client/label site exposes that the serve protocol "
     "never produces or parses back"},
    {"proto-unproduced",
     "a JSON request field the serve protocol parses that no in-repo "
     "producer (client request builder, PointSpec label) ever emits"},
    {"stale-baseline",
     "a baseline entry matches no current finding; delete it"},
    {"stat-grammar",
     "a StatRegistry registration literal violates the "
     "<subsystem>.<id>.<stat> grammar"},
    {"stat-phantom",
     "the documentation names a stat that nothing in src/ emits"},
    {"stat-undocumented",
     "a stat name emitted by src/ never appears in the documentation set"},
    {"transitive-layering",
     "a file's include closure reaches a layer outside its layer's "
     "transitive allowlist"},
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ----------------------------------------------------------------- lexer

bool raw_string_prefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

char decode_escape(char c) {
  switch (c) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case 'r':
      return '\r';
    case '0':
      return '\0';
    default:
      return c;  // \" \\ \' and everything exotic: keep the char itself
  }
}

}  // namespace

LexedSource lex(const std::string& content) {
  enum class St { kNormal, kLine, kBlock, kString, kChar, kRawString };
  St st = St::kNormal;
  std::string raw_delim;  // raw-string delimiter incl. the closing quote

  LexedSource out;
  SourceView& v = out.view;
  std::string raw, code, text;
  int line_no = 1;
  auto flush_line = [&] {
    v.raw.push_back(raw);
    v.code.push_back(code);
    v.text.push_back(text);
    raw.clear();
    code.clear();
    text.clear();
    ++line_no;
  };

  // Token accumulation. Ident/number tokens grow across line splices;
  // string/char tokens accumulate their decoded contents.
  Token cur;
  bool cur_active = false;
  auto begin_token = [&](Token::Kind kind) {
    cur = Token{kind, "", line_no};
    cur_active = true;
  };
  auto end_token = [&] {
    if (cur_active) out.tokens.push_back(cur);
    cur_active = false;
  };
  auto punct = [&](const std::string& p) {
    out.tokens.push_back(Token{Token::Kind::kPunct, p, line_no});
  };

  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char nx = i + 1 < n ? content[i + 1] : '\0';

    // Backslash-newline line splice: the logical line (and the current
    // lexical state) continues on the next physical line. Raw strings are
    // the one context where the splice is literal text.
    if (st != St::kRawString && c == '\\' &&
        (nx == '\n' || (nx == '\r' && i + 2 < n && content[i + 2] == '\n'))) {
      raw += c;
      if (st == St::kString || st == St::kChar) {
        text += c;  // literal view keeps the continuation marker
        code += ' ';
      } else {
        code += ' ';
        text += ' ';
      }
      if (nx == '\r') ++i;  // swallow the CR of a CRLF splice
      ++i;                  // swallow the newline; state persists
      flush_line();
      continue;
    }

    if (c == '\n') {
      // Ordinary string/char literals cannot span lines; recover instead
      // of poisoning the rest of the file on malformed input.
      if (st == St::kLine || st == St::kString || st == St::kChar) {
        if (st == St::kString || st == St::kChar) end_token();
        st = St::kNormal;
      }
      if (st == St::kNormal) end_token();
      flush_line();
      continue;
    }
    raw += c;

    switch (st) {
      case St::kNormal:
        if (c == '/' && nx == '/') {
          end_token();
          st = St::kLine;
          code += ' ';
          text += ' ';
        } else if (c == '/' && nx == '*') {
          end_token();
          st = St::kBlock;
          raw += nx;
          code += "  ";
          text += "  ";
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" with any encoding prefix. The prefix, if
          // present, is the identifier token currently being accumulated.
          if (cur_active && cur.kind == Token::Kind::kIdent &&
              raw_string_prefix(cur.text)) {
            cur_active = false;  // the prefix is part of the literal
            raw_delim = ")";
            std::size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '\n') {
              raw_delim += content[j];
              raw += content[j];
              code += ' ';
              text += content[j];
              ++j;
            }
            if (j < n && content[j] == '(') {
              raw += '(';
              code += ' ';
              text += '(';
              i = j;
              raw_delim += '"';
              st = St::kRawString;
              code += '"';  // keep the structural quote in the code view
              begin_token(Token::Kind::kString);
            } else {
              i = j - 1;  // malformed; fall back to normal scanning
            }
          } else {
            end_token();
            st = St::kString;
            code += '"';
            text += '"';
            begin_token(Token::Kind::kString);
          }
        } else if (c == '\'' && cur_active &&
                   cur.kind == Token::Kind::kNumber) {
          code += c;  // digit separator, e.g. 1'000'000
          text += c;
          cur.text += c;
        } else if (c == '\'') {
          end_token();
          st = St::kChar;
          code += '\'';
          text += '\'';
          begin_token(Token::Kind::kChar);
        } else if (ident_char(c)) {
          const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
          if (!cur_active) {
            begin_token(digit ? Token::Kind::kNumber : Token::Kind::kIdent);
          }
          cur.text += c;
          code += c;
          text += c;
        } else {
          end_token();
          code += c;
          text += c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            // Combine the two-char puncts analyses care about.
            if ((c == ':' && nx == ':') || (c == '-' && nx == '>')) {
              raw += nx;
              code += nx;
              text += nx;
              punct(std::string(1, c) + nx);
              ++i;
            } else {
              punct(std::string(1, c));
            }
          }
        }
        break;
      case St::kLine:
        code += ' ';
        text += ' ';
        break;
      case St::kBlock:
        if (c == '*' && nx == '/') {
          raw += nx;
          code += "  ";
          text += "  ";
          ++i;
          st = St::kNormal;
        } else {
          code += ' ';
          text += ' ';
        }
        break;
      case St::kString:
      case St::kChar: {
        const char quote = st == St::kString ? '"' : '\'';
        if (c == '\\' && nx != '\0' && nx != '\n') {
          raw += nx;
          code += "  ";
          text += c;
          text += nx;
          if (cur_active) cur.text += decode_escape(nx);
          ++i;
        } else if (c == quote) {
          code += quote;
          text += quote;
          end_token();
          st = St::kNormal;
        } else {
          code += ' ';
          text += c;
          if (cur_active) cur.text += c;
        }
        break;
      }
      case St::kRawString:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            raw += content[i + k];
            text += content[i + k];
          }
          code += '"';
          i += raw_delim.size() - 1;
          end_token();
          st = St::kNormal;
        } else {
          code += ' ';
          text += c;
          if (cur_active) cur.text += c;
        }
        break;
    }
  }
  if (st == St::kNormal || st == St::kString || st == St::kChar ||
      st == St::kRawString) {
    end_token();
  }
  if (!raw.empty() || !code.empty()) flush_line();
  return out;
}

// -------------------------------------------------------- layering model

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

const std::set<std::string>& known_layers() {
  static const std::set<std::string> layers = {
      "abb",  "abc",  "check", "cmp",   "common", "core",      "dataflow",
      "dse",  "island", "mem", "noc",   "obs",    "power",     "serve",
      "sim",  "workloads"};
  return layers;
}

const std::map<std::string, std::set<std::string>>& layer_deps() {
  static const std::map<std::string, std::set<std::string>> deps = {
      {"common", {}},
      {"sim", {"common"}},
      {"obs", {"common", "sim"}},
      {"noc", {"common", "sim"}},
      {"mem", {"common", "sim", "noc"}},
      {"abb", {"common", "sim"}},
      {"dataflow", {"common", "sim", "abb"}},
      {"workloads", {"common", "sim", "abb", "dataflow"}},
      {"island", {"common", "sim", "noc", "mem", "abb", "power"}},
      {"power", {"common", "sim", "noc", "mem", "abb", "island", "abc",
                 "core"}},
      {"abc", {"common", "sim", "noc", "mem", "abb", "dataflow", "island"}},
      {"cmp", {"common", "sim", "workloads"}},
      {"core", {"common", "sim", "noc", "mem", "island", "abc", "power",
                "workloads", "check"}},
      {"check", {"common", "sim", "core", "dse", "obs", "workloads"}},
      {"dse", {"common", "sim", "core", "island", "noc", "obs", "workloads"}},
      {"serve", {"common", "sim", "core", "obs", "dse", "workloads"}},
  };
  return deps;
}

std::string layer_of(const std::string& path) {
  std::string layer;
  const auto parts = split_path(path);
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "src" && known_layers().count(parts[i + 1]) != 0) {
      layer = parts[i + 1];  // last match wins (fixture trees nest one)
    }
  }
  return layer;
}

bool path_ends_with(const std::string& path,
                    const std::vector<std::string>& parts) {
  const auto p = split_path(path);
  if (p.size() < parts.size()) return false;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (p[p.size() - parts.size() + i] != parts[i]) return false;
  }
  return true;
}

namespace {

/// Path suffix starting at the last src/tools/bench/examples component —
/// identical for a real checkout and a fixture tree, so baseline keys and
/// finding messages never embed absolute paths.
std::string rel_key(const std::string& path) {
  static const std::set<std::string> roots = {"src", "tools", "bench",
                                              "examples"};
  const auto parts = split_path(path);
  std::size_t start = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (roots.count(parts[i]) != 0) start = i;
  }
  std::string out;
  for (std::size_t i = start; i < parts.size(); ++i) {
    if (!out.empty()) out += "/";
    out += parts[i];
  }
  return out;
}

}  // namespace

// --------------------------------------------------------------- corpus

void add_source(Corpus* corpus, const std::string& path,
                const std::string& content) {
  SourceFile f;
  f.path = path;
  f.layer = layer_of(path);
  f.lexed = lex(content);
  static const std::regex kInclude(R"(^\s*#\s*include\s*"([^"]+)\")");
  for (std::size_t li = 0; li < f.lexed.view.text.size(); ++li) {
    std::smatch m;
    if (std::regex_search(f.lexed.view.text[li], m, kInclude)) {
      f.includes.emplace_back(m[1].str(), static_cast<int>(li + 1));
    }
  }
  corpus->files.push_back(std::move(f));
}

Corpus load_corpus(const std::vector<std::string>& roots,
                   const std::vector<std::string>& doc_paths) {
  namespace fs = std::filesystem;
  Corpus corpus;

  std::vector<std::string> files;
  auto consider = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
      files.push_back(p.generic_string());
    }
  };
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec)) consider(it->path());
      }
    } else if (fs::is_regular_file(root, ec)) {
      consider(fs::path(root));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    add_source(&corpus, file, buf.str());
  }
  for (const auto& doc : doc_paths) {
    std::ifstream in(doc);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus.docs.push_back({doc, buf.str()});
  }
  return corpus;
}

// ------------------------------------------------------ include analysis

namespace {

/// file index -> [(target file index, include line)]
using IncludeGraph = std::vector<std::vector<std::pair<std::size_t, int>>>;

IncludeGraph build_include_graph(const Corpus& corpus) {
  IncludeGraph g(corpus.files.size());
  for (std::size_t i = 0; i < corpus.files.size(); ++i) {
    const SourceFile& f = corpus.files[i];
    for (const auto& [inc, line] : f.includes) {
      // Resolve the quoted path against the corpus by suffix; prefer the
      // candidate sharing the longest path prefix with the includer (so
      // fixture trees resolve within themselves).
      std::size_t best = corpus.files.size();
      std::size_t best_common = 0;
      for (std::size_t j = 0; j < corpus.files.size(); ++j) {
        if (j == i) continue;
        const std::string& p = corpus.files[j].path;
        const std::string suffix = "/" + inc;
        const bool match =
            p == inc ||
            (p.size() > suffix.size() &&
             p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0);
        if (!match) continue;
        std::size_t common = 0;
        while (common < p.size() && common < f.path.size() &&
               p[common] == f.path[common]) {
          ++common;
        }
        if (best == corpus.files.size() || common > best_common) {
          best = j;
          best_common = common;
        }
      }
      if (best < corpus.files.size()) g[i].emplace_back(best, line);
    }
  }
  return g;
}

/// Tarjan strongly-connected components over the include graph.
std::vector<std::vector<std::size_t>> sccs(const IncludeGraph& g) {
  const std::size_t n = g.size();
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> out;
  int next = 0;

  // Iterative Tarjan (explicit frame stack; fixture cycles are tiny but
  // the real tree is ~200 nodes deep in places).
  struct Frame {
    std::size_t v;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root}};
    index[root] = low[root] = next++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.edge < g[fr.v].size()) {
        const std::size_t w = g[fr.v][fr.edge].first;
        ++fr.edge;
        if (index[w] == -1) {
          index[w] = low[w] = next++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w});
        } else if (on_stack[w]) {
          low[fr.v] = std::min(low[fr.v], index[w]);
        }
      } else {
        if (low[fr.v] == index[fr.v]) {
          std::vector<std::size_t> comp;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
            if (w == fr.v) break;
          }
          if (comp.size() > 1) out.push_back(std::move(comp));
        }
        const std::size_t done = fr.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[done]);
        }
      }
    }
  }
  return out;
}

/// Transitive closure of the layer allowlist: every layer legally
/// reachable from `layer` through any chain of allowed direct edges.
std::set<std::string> layer_closure(const std::string& layer) {
  std::set<std::string> out;
  std::vector<std::string> work{layer};
  while (!work.empty()) {
    const std::string l = work.back();
    work.pop_back();
    const auto it = layer_deps().find(l);
    if (it == layer_deps().end()) continue;
    for (const auto& dep : it->second) {
      if (out.insert(dep).second) work.push_back(dep);
    }
  }
  return out;
}

}  // namespace

void analyze_includes(const Corpus& corpus, std::vector<Finding>* out) {
  const IncludeGraph g = build_include_graph(corpus);

  // 1. Include cycles: one finding per non-trivial SCC.
  for (const auto& comp : sccs(g)) {
    std::vector<std::string> members;
    for (const std::size_t idx : comp) {
      members.push_back(rel_key(corpus.files[idx].path));
    }
    std::sort(members.begin(), members.end());
    std::string joined;
    for (const auto& m : members) {
      if (!joined.empty()) joined += " <-> ";
      joined += m;
    }
    const std::size_t anchor =
        *std::min_element(comp.begin(), comp.end(),
                          [&](std::size_t a, std::size_t b) {
                            return corpus.files[a].path < corpus.files[b].path;
                          });
    int line = 1;
    for (const auto& [tgt, l] : g[anchor]) {
      if (std::find(comp.begin(), comp.end(), tgt) != comp.end()) {
        line = l;
        break;
      }
    }
    out->push_back({corpus.files[anchor].path, line, "include-cycle",
                    "include-cycle:" + joined,
                    "#include cycle: " + joined +
                        " — headers must form a DAG; break the cycle with a "
                        "forward declaration or by splitting the header"});
  }

  // 2. Transitive layering: the include *closure* of every layered file
  // must stay inside its layer's transitive allowlist. Per-edge legality
  // is ara_lint's job; this catches paths through unlayered intermediates
  // (tools/, bench/) and through file-scoped exemptions.
  std::map<std::string, std::set<std::string>> closures;
  for (std::size_t i = 0; i < corpus.files.size(); ++i) {
    const SourceFile& f = corpus.files[i];
    if (f.layer.empty()) continue;
    auto cit = closures.find(f.layer);
    if (cit == closures.end()) {
      cit = closures.emplace(f.layer, layer_closure(f.layer)).first;
    }
    std::set<std::string> allowed = cit->second;
    allowed.insert(f.layer);
    // src/dse/search.cc is ara_lint's one path-allowlisted cross edge
    // (dse -> check, for the fuzzer's PointSampler); its closure may
    // legally contain check and everything check reaches.
    if (path_ends_with(f.path, {"src", "dse", "search.cc"})) {
      allowed.insert("check");
      for (const auto& l : layer_closure("check")) allowed.insert(l);
    }

    // BFS with parents for chain reconstruction.
    std::vector<std::size_t> parent(corpus.files.size(), corpus.files.size());
    std::vector<bool> seen(corpus.files.size(), false);
    std::vector<std::size_t> queue{i};
    seen[i] = true;
    std::set<std::string> reported;  // one finding per (file, layer)
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t u = queue[qi];
      for (const auto& [w, line] : g[u]) {
        (void)line;
        if (seen[w]) continue;
        seen[w] = true;
        parent[w] = u;
        queue.push_back(w);
        const std::string& target_layer = corpus.files[w].layer;
        if (target_layer.empty() || allowed.count(target_layer) != 0 ||
            !reported.insert(target_layer).second) {
          continue;
        }
        // Reconstruct the include chain i -> ... -> w.
        std::vector<std::size_t> chain{w};
        for (std::size_t p = u; p != corpus.files.size() && chain.back() != i;
             p = parent[p]) {
          chain.push_back(p);
          if (p == i) break;
        }
        std::reverse(chain.begin(), chain.end());
        std::string via;
        for (const std::size_t idx : chain) {
          if (!via.empty()) via += " -> ";
          via += rel_key(corpus.files[idx].path);
        }
        int first_line = 1;
        if (chain.size() > 1) {
          for (const auto& [tgt, l] : g[i]) {
            if (tgt == chain[1]) {
              first_line = l;
              break;
            }
          }
        }
        out->push_back(
            {f.path, first_line, "transitive-layering",
             "transitive-layering:" + rel_key(f.path) + ":" + target_layer,
             "src/" + f.layer + "/ transitively reaches src/" + target_layer +
                 "/ (outside its layer closure) via " + via +
                 "; every include path must stay inside the layer_deps() "
                 "closure (tools/analyze_core.cc)"});
      }
    }
  }
}

// --------------------------------------------------- lock-order analysis

namespace {

struct LockEdge {
  std::string file;
  int line = 0;
};

bool guard_type(const std::string& ident) {
  return ident == "MutexLock" || ident == "lock_guard" ||
         ident == "unique_lock" || ident == "scoped_lock";
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",    "switch",        "catch",
      "return", "sizeof", "alignof",  "decltype",      "static_assert",
      "new",    "delete", "noexcept", "static_cast",   "dynamic_cast",
      "assert", "throw",  "co_await", "reinterpret_cast"};
  return kw;
}

std::string file_stem(const std::string& path) {
  const auto parts = split_path(path);
  std::string stem = parts.empty() ? path : parts.back();
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  return stem;
}

}  // namespace

void analyze_lock_order(const Corpus& corpus, std::vector<Finding>* out) {
  // mutex-key -> mutex-key -> first acquisition site producing that edge.
  std::map<std::string, std::map<std::string, LockEdge>> edges;

  for (const SourceFile& f : corpus.files) {
    const std::vector<Token>& toks = f.lexed.tokens;
    const std::string stem = file_stem(f.path);

    int depth = 0;
    bool in_fn = false;
    int fn_entry = 0;
    std::string fn_class;
    bool pending_fn = false;
    std::string pending_class;
    struct Guard {
      std::string key;
      int depth;
    };
    std::vector<Guard> held;

    auto is_punct = [&](std::size_t i, const char* p) {
      return i < toks.size() && toks[i].kind == Token::Kind::kPunct &&
             toks[i].text == p;
    };
    auto is_ident = [&](std::size_t i) {
      return i < toks.size() && toks[i].kind == Token::Kind::kIdent;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "{") {
          ++depth;
          if (pending_fn) {
            in_fn = true;
            fn_entry = depth;
            fn_class = pending_class;
            pending_fn = false;
            held.clear();
          }
        } else if (t.text == "}") {
          --depth;
          while (!held.empty() && held.back().depth > depth) held.pop_back();
          if (in_fn && depth < fn_entry) {
            in_fn = false;
            held.clear();
          }
        } else if (t.text == ";" && pending_fn) {
          pending_fn = false;  // declaration, not a definition
        }
        continue;
      }

      // Function-definition heuristic: <Class>::<name>(...) followed
      // (after trailing qualifiers / member initializers) by '{'.
      if (!in_fn && !pending_fn && is_ident(i) && is_punct(i + 1, "(") &&
          control_keywords().count(t.text) == 0) {
        std::string cls;
        if (i >= 2 && is_punct(i - 1, "::") && is_ident(i - 2)) {
          cls = toks[i - 2].text;
        }
        // Skip the parameter list.
        std::size_t j = i + 1;
        int pdepth = 0;
        for (; j < toks.size(); ++j) {
          if (toks[j].kind != Token::Kind::kPunct) continue;
          if (toks[j].text == "(") ++pdepth;
          if (toks[j].text == ")" && --pdepth == 0) break;
        }
        pending_fn = j < toks.size();
        pending_class = cls.empty() ? stem : cls;
        // pending_fn is confirmed by the next '{' and cancelled by ';'.
        continue;
      }

      // Guard acquisition: [common:: / std::] <GuardType> [<...>]
      // [name] ( expr [, expr]* )
      if (in_fn && t.kind == Token::Kind::kIdent && guard_type(t.text)) {
        std::size_t j = i + 1;
        if (is_punct(j, "<")) {  // lock_guard<std::mutex> ...
          int adepth = 0;
          for (; j < toks.size(); ++j) {
            if (toks[j].kind != Token::Kind::kPunct) continue;
            if (toks[j].text == "<") ++adepth;
            if (toks[j].text == ">" && --adepth == 0) {
              ++j;
              break;
            }
          }
        }
        if (is_ident(j)) ++j;  // the guard variable name (absent: temporary)
        if (!is_punct(j, "(")) continue;
        // Collect the top-level comma-separated argument expressions and
        // take the last identifier of each as the mutex name.
        std::vector<std::string> mutexes;
        std::string last_ident;
        int adepth = 1;
        int site_line = toks[j].line;
        for (++j; j < toks.size() && adepth > 0; ++j) {
          const Token& a = toks[j];
          if (a.kind == Token::Kind::kPunct) {
            if (a.text == "(" || a.text == "[" || a.text == "{") ++adepth;
            if (a.text == ")" || a.text == "]" || a.text == "}") --adepth;
            if ((a.text == "," && adepth == 1) || adepth == 0) {
              if (!last_ident.empty()) mutexes.push_back(last_ident);
              last_ident.clear();
            }
          } else if (a.kind == Token::Kind::kIdent) {
            last_ident = a.text;
          }
        }
        for (const std::string& name : mutexes) {
          const std::string key = fn_class + "::" + name;
          for (const Guard& h : held) {
            if (h.key == key) continue;
            auto& slot = edges[h.key][key];
            if (slot.file.empty()) slot = {f.path, site_line};
          }
          held.push_back({key, depth});
        }
      }
    }
  }

  // Cycle detection over the acquisition-order graph (DFS, since the
  // graph is keyed by strings and tiny).
  std::vector<std::string> nodes;
  for (const auto& [from, tos] : edges) {
    nodes.push_back(from);
    for (const auto& [to, site] : tos) {
      (void)site;
      nodes.push_back(to);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::set<std::string> reported;
  std::function<bool(const std::string&, std::vector<std::string>*)> dfs =
      [&](const std::string& node, std::vector<std::string>* path) -> bool {
    const auto cyc =
        std::find(path->begin(), path->end(), node);
    if (cyc != path->end()) {
      // Canonicalize: rotate so the smallest key leads, dedupe.
      std::vector<std::string> cycle(cyc, path->end());
      const auto smallest = std::min_element(cycle.begin(), cycle.end());
      std::rotate(cycle.begin(), smallest, cycle.end());
      std::string joined;
      for (const auto& n : cycle) {
        if (!joined.empty()) joined += " -> ";
        joined += n;
      }
      joined += " -> " + cycle.front();
      if (reported.insert(joined).second) {
        const LockEdge& site = edges[cycle.front()].begin()->second;
        std::string sites;
        for (std::size_t k = 0; k < cycle.size(); ++k) {
          const std::string& a = cycle[k];
          const std::string& b = cycle[(k + 1) % cycle.size()];
          const LockEdge& e = edges[a][b];
          sites += "\n    " + a + " held while taking " + b + " at " +
                   rel_key(e.file) + ":" + std::to_string(e.line);
        }
        out->push_back(
            {site.file, site.line, "lock-order", "lock-order:" + joined,
             "potential deadlock: mutex acquisition order forms a cycle " +
                 joined + sites +
                 "\n  pick one global order and acquire in it everywhere"});
      }
      return true;
    }
    path->push_back(node);
    const auto it = edges.find(node);
    if (it != edges.end()) {
      for (const auto& [to, site] : it->second) {
        (void)site;
        dfs(to, path);
      }
    }
    path->pop_back();
    return false;
  };
  for (const auto& n : nodes) {
    std::vector<std::string> path;
    dfs(n, &path);
  }
}

// --------------------------------------------------------- stat analysis

namespace {

/// Do two '*'-wildcard patterns have a common instantiation?
bool globs_overlap_impl(const std::string& a, std::size_t i,
                        const std::string& b, std::size_t j,
                        std::vector<std::vector<signed char>>* memo) {
  signed char& m = (*memo)[i][j];
  if (m != -1) return m != 0;
  bool ok = false;
  if (i == a.size() && j == b.size()) {
    ok = true;
  } else if (i < a.size() && a[i] == '*') {
    ok = globs_overlap_impl(a, i + 1, b, j, memo) ||
         (j < b.size() && globs_overlap_impl(a, i, b, j + 1, memo));
  } else if (j < b.size() && b[j] == '*') {
    ok = globs_overlap_impl(a, i, b, j + 1, memo) ||
         (i < a.size() && globs_overlap_impl(a, i + 1, b, j, memo));
  } else if (i < a.size() && j < b.size() && a[i] == b[j]) {
    ok = globs_overlap_impl(a, i + 1, b, j + 1, memo);
  }
  m = ok ? 1 : 0;
  return ok;
}

bool globs_overlap(const std::string& a, const std::string& b) {
  std::vector<std::vector<signed char>> memo(
      a.size() + 1, std::vector<signed char>(b.size() + 1, -1));
  return globs_overlap_impl(a, 0, b, 0, &memo);
}

struct StatSite {
  std::string pattern;  // literal fragments, '*' for runtime segments
  std::string file;
  int line = 0;
};

struct DocClaim {
  std::string name;  // may contain '*' wildcards
  std::string file;
  int line = 0;
};

const std::set<std::string>& doc_ext_blacklist() {
  // Backticked dotted tokens ending in these are file names, not stats.
  static const std::set<std::string> ext = {
      "h",   "hpp",  "cc",  "cpp", "md",   "json", "jsonl", "txt",
      "cmake", "csv", "yml", "yaml", "py", "sock", "html",  "sh",
      "dev", "com",  "org", "io",  "cfg",  "clang_tidy", "gitignore"};
  return ext;
}

/// Registration call names whose first argument is a stat name.
bool stat_register_fn(const std::string& ident) {
  return ident == "counter" || ident == "accumulator" ||
         ident == "histogram" || ident == "set_counter" || ident == "gauge";
}

const std::regex& stat_full_grammar() {
  static const std::regex re(R"([a-z][a-z0-9_]*(\.[a-z0-9_]+)+)");
  return re;
}

const std::regex& stat_glob_grammar() {
  static const std::regex re(R"([a-z*][a-z0-9_.*]*(\.[a-z0-9_*]+)*)");
  return re;
}

/// Harvest the name expression of one registration call starting at the
/// token after its '('. Returns the glob pattern ("" when the first
/// argument carries no string literal at all).
std::string harvest_name_expr(const std::vector<Token>& toks,
                              std::size_t start, int* line) {
  std::string pattern;
  bool any_string = false;
  int depth = 1;
  int string_depth = -1;
  for (std::size_t j = start; j < toks.size() && depth > 0; ++j) {
    const Token& a = toks[j];
    if (a.kind == Token::Kind::kPunct) {
      if (a.text == "(" || a.text == "[" || a.text == "{") ++depth;
      if (a.text == ")" || a.text == "]" || a.text == "}") --depth;
      if (a.text == "," && depth == (string_depth == -1 ? 1 : string_depth)) {
        break;  // end of the name argument
      }
      continue;
    }
    if (a.kind == Token::Kind::kString) {
      if (!any_string) {
        *line = a.line;
        string_depth = depth;
      }
      any_string = true;
      pattern += a.text;
    } else {
      // Runtime segment (variable, std::to_string(...), ...).
      if (pattern.empty() || pattern.back() != '*') pattern += '*';
    }
  }
  return any_string ? pattern : "";
}

std::vector<StatSite> harvest_stats(const Corpus& corpus,
                                    std::vector<Finding>* grammar_out) {
  std::vector<StatSite> sites;
  for (const SourceFile& f : corpus.files) {
    if (f.layer.empty()) continue;  // registrations live in src/ layers
    const std::vector<Token>& toks = f.lexed.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      if (toks[i + 1].kind != Token::Kind::kPunct ||
          toks[i + 1].text != "(") {
        continue;
      }
      const bool reg = stat_register_fn(toks[i].text);
      const bool push = toks[i].text == "push_back";
      if (!reg && !push) continue;
      int line = toks[i].line;
      const std::string pattern = harvest_name_expr(toks, i + 2, &line);
      if (pattern.empty()) continue;
      const bool is_glob = pattern.find('*') != std::string::npos;
      const bool well_formed =
          is_glob ? std::regex_match(pattern, stat_glob_grammar())
                  : std::regex_match(pattern, stat_full_grammar());
      if (push) {
        // push_back({"...", v}) is only a stat site when the literal
        // already reads as a stat name (snapshot counter pushes); other
        // vectors of labeled things are none of our business.
        if (well_formed) sites.push_back({pattern, f.path, line});
        continue;
      }
      if (!well_formed && grammar_out != nullptr) {
        grammar_out->push_back(
            {f.path, line, "stat-grammar", "stat-grammar:" + pattern,
             "stat registration \"" + pattern +
                 "\" must follow <subsystem>.<id>.<stat> (lowercase "
                 "dot-separated segments, e.g. \"noc.router.3.flits\")"});
        continue;
      }
      sites.push_back({pattern, f.path, line});
    }
  }
  return sites;
}

std::vector<DocClaim> harvest_doc_claims(const Corpus& corpus) {
  std::vector<DocClaim> claims;
  static const std::regex kClaim(R"([a-z][a-z0-9_*]*(\.[a-z0-9_*]+)+)");
  for (const DocFile& doc : corpus.docs) {
    std::istringstream in(doc.content);
    std::string line;
    int line_no = 0;
    bool fenced = false;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.find("```") != std::string::npos) {
        fenced = !fenced;
        continue;
      }
      if (fenced) continue;
      // Inline `span` extraction; the whole span must be a stat name.
      std::size_t pos = 0;
      while ((pos = line.find('`', pos)) != std::string::npos) {
        const std::size_t end = line.find('`', pos + 1);
        if (end == std::string::npos) break;
        const std::string span = line.substr(pos + 1, end - pos - 1);
        pos = end + 1;
        if (!std::regex_match(span, kClaim)) continue;
        const std::size_t last_dot = span.find_last_of('.');
        const std::string last_seg = span.substr(last_dot + 1);
        if (doc_ext_blacklist().count(last_seg) != 0) continue;
        claims.push_back({span, doc.path, line_no});
      }
    }
  }
  return claims;
}

}  // namespace

void analyze_stats(const Corpus& corpus, std::vector<Finding>* out) {
  std::vector<StatSite> sites = harvest_stats(corpus, out);
  const std::vector<DocClaim> claims = harvest_doc_claims(corpus);
  if (corpus.docs.empty()) return;  // grammar-only mode (unit tests)

  // Emitted but never documented. One finding per distinct pattern.
  std::set<std::string> seen_patterns;
  for (const StatSite& s : sites) {
    if (!seen_patterns.insert(s.pattern).second) continue;
    bool documented = false;
    for (const DocClaim& c : claims) {
      if (globs_overlap(s.pattern, c.name)) {
        documented = true;
        break;
      }
    }
    if (!documented) {
      out->push_back(
          {s.file, s.line, "stat-undocumented",
           "stat-undocumented:" + s.pattern,
           "stat \"" + s.pattern +
               "\" is emitted here but never documented; add it to the "
               "stat inventory (DESIGN.md \"Observability\") or remove the "
               "registration"});
    }
  }

  // Documented but never emitted — only for claims whose root subsystem
  // is one the code actually registers under (so prose about unrelated
  // dotted names can't trip the gate).
  std::set<std::string> roots;
  for (const StatSite& s : sites) {
    const std::size_t dot = s.pattern.find('.');
    const std::string root =
        dot == std::string::npos ? s.pattern : s.pattern.substr(0, dot);
    if (root.find('*') == std::string::npos) roots.insert(root);
  }
  std::set<std::string> seen_claims;
  for (const DocClaim& c : claims) {
    if (!seen_claims.insert(c.name).second) continue;
    const std::size_t dot = c.name.find('.');
    const std::string root =
        dot == std::string::npos ? c.name : c.name.substr(0, dot);
    if (roots.count(root) == 0) continue;
    bool emitted = false;
    for (const StatSite& s : sites) {
      if (globs_overlap(s.pattern, c.name)) {
        emitted = true;
        break;
      }
    }
    if (!emitted) {
      out->push_back({c.file, c.line, "stat-phantom",
                      "stat-phantom:" + c.name,
                      "documentation names stat \"" + c.name +
                          "\" but nothing in src/ emits it; fix the doc or "
                          "restore the registration"});
    }
  }
}

// ----------------------------------------------------- protocol analysis

namespace {

struct ProtoSite {
  const SourceFile* file = nullptr;
  /// key -> first line it appears on
  std::map<std::string, int> parsed;    // take_*/find("key") call sites
  std::map<std::string, int> produced;  // "key": inside built JSON text
};

const std::regex& json_key_regex() {
  static const std::regex re(R"re("([A-Za-z_][A-Za-z0-9_]*)"\s*:)re");
  return re;
}

ProtoSite harvest_proto(const SourceFile& f, bool label_keys) {
  ProtoSite site;
  site.file = &f;
  const std::vector<Token>& toks = f.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kIdent &&
        (t.text == "find" || t.text.rfind("take_", 0) == 0) &&
        i + 1 < toks.size() && toks[i + 1].kind == Token::Kind::kPunct &&
        toks[i + 1].text == "(") {
      // First string literal inside the call is the field name.
      int depth = 1;
      for (std::size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
        const Token& a = toks[j];
        if (a.kind == Token::Kind::kPunct) {
          if (a.text == "(") ++depth;
          if (a.text == ")") --depth;
        } else if (a.kind == Token::Kind::kString) {
          if (site.parsed.find(a.text) == site.parsed.end()) {
            site.parsed[a.text] = a.line;
          }
          break;
        }
      }
    }
    if (t.kind == Token::Kind::kString) {
      for (std::sregex_iterator it(t.text.begin(), t.text.end(),
                                   json_key_regex()),
           end;
           it != end; ++it) {
        const std::string key = (*it)[1].str();
        if (site.produced.find(key) == site.produced.end()) {
          site.produced[key] = t.line;
        }
      }
      if (label_keys) {
        // PointSpec::label() writes "islands=..,net=.." — every key= is a
        // produced point field.
        static const std::regex kLabel(R"(([a-z_][a-z0-9_]*)=)");
        for (std::sregex_iterator it(t.text.begin(), t.text.end(), kLabel),
             end;
             it != end; ++it) {
          const std::string key = (*it)[1].str();
          if (site.produced.find(key) == site.produced.end()) {
            site.produced[key] = t.line;
          }
        }
      }
    }
  }
  return site;
}

/// "widths" produces "width", "policies" produces "policy": search-space
/// list fields are the plural of the point field they enumerate.
bool deplural_match(const std::string& key,
                    const std::set<std::string>& produced) {
  if (produced.count(key) != 0) return true;
  if (key.size() > 3 && key.compare(key.size() - 3, 3, "ies") == 0 &&
      produced.count(key.substr(0, key.size() - 3) + "y") != 0) {
    return true;
  }
  if (key.size() > 1 && key.back() == 's' &&
      produced.count(key.substr(0, key.size() - 1)) != 0) {
    return true;
  }
  return false;
}

}  // namespace

void analyze_protocol(const Corpus& corpus, std::vector<Finding>* out) {
  const SourceFile* protocol = nullptr;
  const SourceFile* client = nullptr;
  const SourceFile* spec = nullptr;
  for (const SourceFile& f : corpus.files) {
    if (path_ends_with(f.path, {"src", "serve", "protocol.cc"})) {
      protocol = &f;
    } else if (path_ends_with(f.path, {"tools", "ara_serve_client.cc"})) {
      client = &f;
    } else if (path_ends_with(f.path, {"src", "dse", "spec.cc"})) {
      spec = &f;
    }
  }
  // The drift check needs both ends of the wire; partial corpora (unit
  // tests over one subtree) stay silent rather than reporting the absent
  // half as drift.
  if (protocol == nullptr || client == nullptr) return;

  const ProtoSite server_site = harvest_proto(*protocol, false);
  const ProtoSite client_site = harvest_proto(*client, false);
  ProtoSite spec_site;
  if (spec != nullptr) spec_site = harvest_proto(*spec, true);

  // 1. Request fields the server parses must be producible by an in-repo
  // producer: the client's request builders or the PointSpec label
  // surface (plural space lists map to their singular point field).
  std::set<std::string> producers;
  for (const auto& [k, l] : client_site.produced) {
    (void)l;
    producers.insert(k);
  }
  for (const auto& [k, l] : spec_site.produced) {
    (void)l;
    producers.insert(k);
  }
  for (const auto& [key, line] : server_site.parsed) {
    if (deplural_match(key, producers)) continue;
    out->push_back(
        {protocol->path, line, "proto-unproduced", "proto-unproduced:" + key,
         "protocol field \"" + key +
             "\" is parsed here but never produced by " +
             rel_key(client->path) + " or " +
             (spec != nullptr ? rel_key(spec->path)
                              : std::string("the PointSpec label surface")) +
             "; wire it through the client (or baseline it with a reason)"});
  }

  // 2. Response fields the client reads must be produced by the server.
  for (const auto& [key, line] : client_site.parsed) {
    if (server_site.produced.count(key) != 0) continue;
    out->push_back(
        {client->path, line, "proto-unparsed", "proto-unparsed:" + key,
         "client reads response field \"" + key + "\" that " +
             rel_key(protocol->path) +
             " never produces; fix whichever side drifted (or baseline it "
             "with a reason)"});
  }

  // 3. Every point field the label surface exposes must be parseable.
  for (const auto& [key, line] : spec_site.parsed) {
    (void)line;
    (void)key;  // labels parse nothing today; kept for symmetry
  }
  if (spec != nullptr) {
    for (const auto& [key, line] : spec_site.produced) {
      if (server_site.parsed.count(key) != 0) continue;
      out->push_back(
          {spec->path, line, "proto-unparsed", "proto-unparsed:" + key,
           "PointSpec label field \"" + key + "\" has no parser in " +
               rel_key(protocol->path) +
               "; requests cannot express this dimension"});
    }
  }
}

// ------------------------------------------------------------- plumbing

namespace {

void json_escape(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

std::set<std::string> parse_baseline(const std::string& content) {
  std::set<std::string> out;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    line = line.substr(start);
    if (!line.empty()) out.insert(line);
  }
  return out;
}

AnalyzeResult analyze(const Corpus& corpus,
                      const std::set<std::string>& baseline,
                      const std::string& baseline_path) {
  AnalyzeResult result;
  result.files_scanned = corpus.files.size();
  result.docs_scanned = corpus.docs.size();

  std::vector<Finding> raw;
  analyze_includes(corpus, &raw);
  analyze_lock_order(corpus, &raw);
  analyze_stats(corpus, &raw);
  analyze_protocol(corpus, &raw);

  std::set<std::string> used;
  for (Finding& f : raw) {
    if (baseline.count(f.key) != 0) {
      used.insert(f.key);
      ++result.baselined;
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  // Baseline entries matching nothing are themselves findings (the
  // bad-suppression analog): stale entries can't rot silently.
  for (const std::string& key : baseline) {
    if (used.count(key) != 0) continue;
    result.findings.push_back(
        {baseline_path.empty() ? "<baseline>" : baseline_path, 1,
         "stale-baseline", "stale-baseline:" + key,
         "baseline entry '" + key +
             "' matches no current finding; delete it"});
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.key < b.key;
            });
  return result;
}

std::string to_text(const AnalyzeResult& result) {
  std::string out;
  for (const auto& f : result.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
           f.message + "\n  baseline key: " + f.key + "\n";
  }
  out += "ara_analyze: " + std::to_string(result.findings.size()) +
         " finding(s) in " + std::to_string(result.files_scanned) +
         " file(s) + " + std::to_string(result.docs_scanned) + " doc(s), " +
         std::to_string(result.baselined) + " baselined\n";
  return out;
}

std::string to_json(const AnalyzeResult& result) {
  std::string out = "{\"findings\":[";
  bool first = true;
  for (const auto& f : result.findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"file\":\"";
    json_escape(&out, f.file);
    out += "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"";
    json_escape(&out, f.rule);
    out += "\",\"key\":\"";
    json_escape(&out, f.key);
    out += "\",\"message\":\"";
    json_escape(&out, f.message);
    out += "\"}";
  }
  out += "],\"files_scanned\":" + std::to_string(result.files_scanned) +
         ",\"docs_scanned\":" + std::to_string(result.docs_scanned) +
         ",\"baselined\":" + std::to_string(result.baselined) + "}\n";
  return out;
}

std::string to_baseline(const AnalyzeResult& result) {
  std::set<std::string> keys;
  for (const auto& f : result.findings) {
    if (f.rule != "stale-baseline") keys.insert(f.key);
  }
  std::string out =
      "# ara_analyze baseline — one finding key per line, '#' comments.\n"
      "# Every entry needs a comment saying WHY it is sanctioned; stale\n"
      "# entries are themselves findings (stale-baseline), so this file\n"
      "# can only shrink unless a new exemption is deliberately added.\n";
  for (const auto& k : keys) out += k + "\n";
  return out;
}

}  // namespace ara::analyze
