// ara_lint — project-specific determinism & convention rule engine.
//
// A deliberately dependency-free (no libclang) token/line-level linter that
// enforces the source-level rules the simulator's determinism and threading
// guarantees rest on. DESIGN.md "Static analysis" documents the full rule
// catalog with rationale; tests/lint_fixtures/ + tests/lint_test.cc pin the
// exact behaviour of every rule.
//
// The engine strips comments and string/char literals (tracking block
// comments and raw strings across lines) before matching, so prose like
// "the new kernel" or a string containing "delete " can never trip a rule.
// Findings are suppressed per line with
//
//     int x = rand();  // ara-lint: allow(no-rand)
//
// or, when the line is too long, with the same comment alone on the
// preceding line. Suppressions naming an unknown rule are themselves a
// finding (bad-suppression), so stale allows can't rot silently.
//
// This header is the engine's library interface: the ara_lint binary
// (tools/ara_lint.cc) and the fixture tests (tests/lint_test.cc) both link
// it, which is what lets the tests assert exact rule IDs and line numbers
// without spawning processes.
#pragma once

#include <string>
#include <vector>

namespace ara::lint {

/// One rule violation. `line` is 1-based.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Catalog entry for --list-rules and DESIGN.md cross-checking.
struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Everything one engine run produced.
struct LintResult {
  std::vector<Finding> findings;  // unsuppressed, file/line ordered
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  // findings silenced by allow() comments
};

/// The full rule catalog, id-sorted.
const std::vector<RuleInfo>& rules();

/// Lint one in-memory translation unit. `path` drives rule scoping (which
/// rules apply where — e.g. layering only under src/) and is copied into
/// findings verbatim. `suppressed` (optional) is incremented per allow()ed
/// finding.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 std::size_t* suppressed = nullptr);

/// Walk `roots` (files or directories, recursively; .h/.cc/.cpp only) and
/// lint everything found, in sorted path order for deterministic output.
LintResult lint_paths(const std::vector<std::string>& roots);

/// "file:line: rule: message" per finding + a one-line summary.
std::string to_text(const LintResult& result);

/// Machine-readable findings list (strict RFC 8259, validated by
/// tests/lint_smoke.cmake through ara_json_check).
std::string to_json(const LintResult& result);

}  // namespace ara::lint
