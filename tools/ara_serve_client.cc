// ara_serve_client: one-shot (or watching) client for an ara_serve daemon.
//
// One-shot mode sends a single request frame and prints the response
// payload (JSON) to stdout. Useful for poking a server by hand and as the
// building block of shell-driven checks:
//
//   ara_serve_client --socket /tmp/ara.sock --ping
//   ara_serve_client --socket /tmp/ara.sock --stats
//   ara_serve_client --socket /tmp/ara.sock \
//       --json '{"type":"sweep","workload":"Denoise","scale":0.05}'
//   ara_serve_client --socket /tmp/ara.sock \
//       --search Denoise --objective perf --budget 12 --seed 7
//
// Outgoing frames are validated through the same protocol registry the
// server parses with (serve::protocol::parse_request), so a typo'd --json
// request fails locally with the server's exact error message instead of
// a round trip; --raw sends the bytes unvalidated (for probing the
// server's own error paths).
//
// --watch turns the client into a top-like live view: it polls the stats
// endpoint every --interval-ms (default 1000) on one connection and
// renders a line per tick with lifetime counters, their deltas since the
// previous tick, and the server's serve.window.* sliding-window gauges
// (requests/sec, hit ratio, p50/p95/p99 latency). --count N stops after N
// ticks (0 = until the connection drops or SIGINT).
//
//   ara_serve_client --socket /tmp/ara.sock --watch --interval-ms 500
//
// Exit status: 0 response received (every tick, for --watch), 1 transport
// failure, 2 usage error.
#include <cinttypes>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "obs/json_io.h"
#include "serve/protocol.h"

namespace {

/// Digits-only count parser (same rule as ara_serve's flag parsing):
/// std::stoul would abort on "--count two" and wrap "-1" to a huge value.
bool parse_count(const std::string& text, unsigned long long* out) {
  if (text.empty() || text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

void usage() {
  std::cout <<
      "ara_serve_client — talk to an ara_serve daemon\n"
      "  --socket PATH    AF_UNIX socket the daemon listens on (required)\n"
      "  --ping           liveness probe (default request)\n"
      "  --stats          fetch the server's metrics snapshot\n"
      "  --json REQ       send a JSON request frame (validated locally)\n"
      "  --raw            skip local validation of the outgoing frame\n"
      "  --client NAME    stamp built-in requests with a \"client\" field\n"
      "                   (shows up in server-side request traces)\n"
      "  --search BENCH   autotuning search over the default space\n"
      "  --objective O    search objective: perf | perf_per_energy |\n"
      "                   perf_per_area (default perf)\n"
      "  --budget N       search evaluation budget (default 16)\n"
      "  --seed N         search sampler seed (default 1)\n"
      "  --scale F        search invocation scale factor (default 0.25)\n"
      "  --shards N       partitioned-kernel workers per simulated point\n"
      "                   (default 1; served bytes identical either way)\n"
      "  --watch          poll stats and render live rates/deltas\n"
      "  --interval-ms N  watch poll interval (default 1000)\n"
      "  --count N        stop watching after N ticks (default 0 = forever)\n"
      "request types (shared server/client registry): " +
          ara::serve::protocol::supported_types() + "\n";
}

/// Pull one numeric stat out of a parsed stats response. Counters are
/// plain numbers; window gauges are accumulator objects whose "sum" holds
/// the gauge value.
double stat_value(const ara::obs::JsonValue& stats_json,
                  const char* section, const std::string& name) {
  const ara::obs::JsonValue* metrics = stats_json.find("metrics");
  const ara::obs::JsonValue* kind =
      metrics != nullptr ? metrics->find(section) : nullptr;
  const ara::obs::JsonValue* v = kind != nullptr ? kind->find(name) : nullptr;
  if (v == nullptr) return 0;
  if (v->is_number()) return v->as_double();
  const ara::obs::JsonValue* sum = v->find("sum");
  return sum != nullptr ? sum->as_double() : 0;
}

int watch(const std::string& socket_path, unsigned interval_ms,
          std::uint64_t count) {
  const int fd = ara::serve::protocol::connect_unix(socket_path);
  if (fd < 0) {
    std::cerr << "error: cannot connect to '" << socket_path << "'\n";
    return 1;
  }
  std::printf("%8s %8s %8s %8s  %9s %6s %9s %9s %9s\n", "requests", "(+d)",
              "sweeps", "points", "win req/s", "hit%", "p50 ms", "p95 ms",
              "p99 ms");
  std::uint64_t prev_requests = 0;
  bool first = true;
  for (std::uint64_t tick = 0; count == 0 || tick < count; ++tick) {
    std::string response;
    if (!ara::serve::protocol::write_frame(fd, "{\"type\":\"stats\"}") ||
        ara::serve::protocol::read_frame(fd, &response) !=
            ara::serve::protocol::ReadStatus::kOk) {
      std::cerr << "error: stats poll failed (server gone?)\n";
      ::close(fd);
      return 1;
    }
    ara::obs::JsonValue parsed;
    if (!ara::obs::parse_json(response, &parsed, nullptr)) {
      std::cerr << "error: stats response is not valid JSON\n";
      ::close(fd);
      return 1;
    }
    const auto requests = static_cast<std::uint64_t>(
        stat_value(parsed, "counters", "serve.server.requests"));
    const auto sweeps = static_cast<std::uint64_t>(
        stat_value(parsed, "counters", "serve.server.sweeps"));
    const auto points = static_cast<std::uint64_t>(
        stat_value(parsed, "counters", "serve.server.points"));
    const double req_s =
        stat_value(parsed, "accumulators", "serve.window.req_per_sec");
    const double hit =
        stat_value(parsed, "accumulators", "serve.window.hit_ratio");
    const double p50 =
        stat_value(parsed, "accumulators", "serve.window.p50_ms");
    const double p95 =
        stat_value(parsed, "accumulators", "serve.window.p95_ms");
    const double p99 =
        stat_value(parsed, "accumulators", "serve.window.p99_ms");
    std::printf("%8" PRIu64 " %8s %8" PRIu64 " %8" PRIu64
                "  %9.2f %5.1f%% %9.2f %9.2f %9.2f\n",
                requests,
                first ? "-"
                      : ("+" + std::to_string(requests - prev_requests))
                            .c_str(),
                sweeps, points, req_s, hit * 100.0, p50, p95, p99);
    std::fflush(stdout);
    prev_requests = requests;
    first = false;
    if (count == 0 || tick + 1 < count) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ara;

  std::string socket_path;
  std::string request = "{\"type\":\"ping\"}";
  bool watch_mode = false;
  bool raw = false;
  bool user_json = false;
  std::string client_name;
  std::string search_bench;
  std::string objective = "perf";
  std::uint64_t budget = 16;
  std::uint64_t seed = 1;
  std::string scale_text;
  std::uint64_t shards = 1;
  unsigned interval_ms = 1000;
  std::uint64_t count = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--ping") {
      request = "{\"type\":\"ping\"}";
    } else if (arg == "--stats") {
      request = "{\"type\":\"stats\"}";
    } else if (arg == "--json") {
      request = next();
      user_json = true;
    } else if (arg == "--raw") {
      raw = true;
    } else if (arg == "--client") {
      client_name = next();
    } else if (arg == "--search") {
      search_bench = next();
    } else if (arg == "--objective") {
      objective = next();
    } else if (arg == "--scale") {
      scale_text = next();
    } else if (arg == "--budget" || arg == "--seed") {
      const std::string value = next();
      unsigned long long v = 0;
      if (!parse_count(value, &v)) {
        std::cerr << arg << ": expected a non-negative integer, got '"
                  << value << "'\n";
        return 2;
      }
      (arg == "--budget" ? budget : seed) = v;
    } else if (arg == "--shards") {
      const std::string value = next();
      unsigned long long v = 0;
      if (!parse_count(value, &v) || v == 0 ||
          v > serve::protocol::kMaxShards) {
        std::cerr << "--shards: expected an integer between 1 and "
                  << serve::protocol::kMaxShards << ", got '" << value
                  << "'\n";
        return 2;
      }
      shards = v;
    } else if (arg == "--watch") {
      watch_mode = true;
    } else if (arg == "--interval-ms" || arg == "--count") {
      const std::string value = next();
      unsigned long long v = 0;
      if (!parse_count(value, &v)) {
        std::cerr << arg << ": expected a non-negative integer, got '"
                  << value << "'\n";
        return 2;
      }
      if (arg == "--interval-ms") {
        interval_ms = static_cast<unsigned>(v);
      } else {
        count = v;
      }
    } else {
      std::cerr << "unknown option '" << arg << "' (see --help)\n";
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::cerr << "error: --socket PATH is required (see --help)\n";
    return 2;
  }
  if (!search_bench.empty()) {
    double scale = 0.25;
    if (!scale_text.empty()) {
      char* end = nullptr;
      scale = std::strtod(scale_text.c_str(), &end);
      if (end == nullptr || *end != '\0' || !(scale > 0)) {
        std::cerr << "--scale: expected a positive number, got '"
                  << scale_text << "'\n";
        return 2;
      }
    }
    std::ostringstream os;
    os << "{\"v\":" << serve::protocol::kProtocolVersion
       << ",\"type\":\"search\",\"workload\":\"";
    obs::json_escape(os, search_bench);
    os << "\",\"objective\":\"";
    obs::json_escape(os, objective);
    os << "\",\"budget\":" << budget << ",\"seed\":" << seed
       << ",\"shards\":" << shards << ",\"scale\":";
    obs::json_number(os, scale, 17);
    os << "}";
    request = os.str();
  }
  if (!client_name.empty() && !user_json) {
    // Stamp the request with the protocol's optional "client" identity
    // field so server-side traces attribute it to this invocation. User
    // --json frames are sent as written (they may carry their own).
    std::ostringstream os;
    os << "{\"client\":\"";
    obs::json_escape(os, client_name);
    os << "\",";
    request = os.str() + request.substr(request.find('{') + 1);
  }
  if (!raw) {
    // Same registry the server dispatches on: reject locally what the
    // server would reject, with the identical message.
    serve::protocol::Request parsed;
    std::string parse_error;
    if (!serve::protocol::parse_request(request, &parsed, &parse_error)) {
      std::cerr << "error: invalid request: " << parse_error << "\n";
      return 2;
    }
  }
  if (watch_mode) return watch(socket_path, interval_ms, count);

  const int fd = serve::protocol::connect_unix(socket_path);
  if (fd < 0) {
    std::cerr << "error: cannot connect to '" << socket_path << "'\n";
    return 1;
  }
  std::string response;
  const bool ok =
      serve::protocol::write_frame(fd, request) &&
      serve::protocol::read_frame(fd, &response) ==
          serve::protocol::ReadStatus::kOk;
  ::close(fd);
  if (!ok) {
    std::cerr << "error: request failed (server gone or frame damaged)\n";
    return 1;
  }
  std::cout << response << "\n";
  return 0;
}
