// ara_serve_client: one-shot client for a running ara_serve daemon.
//
// Sends a single request frame and prints the response payload (JSON) to
// stdout. Useful for poking a server by hand and as the building block of
// shell-driven checks:
//
//   ara_serve_client --socket /tmp/ara.sock --ping
//   ara_serve_client --socket /tmp/ara.sock --stats
//   ara_serve_client --socket /tmp/ara.sock \
//       --json '{"type":"sweep","workload":"Denoise","scale":0.05}'
//
// Exit status: 0 response received, 1 transport failure, 2 usage error.
#include <iostream>
#include <string>

#include <unistd.h>

#include "serve/protocol.h"

namespace {

void usage() {
  std::cout <<
      "ara_serve_client — send one request to an ara_serve daemon\n"
      "  --socket PATH    AF_UNIX socket the daemon listens on (required)\n"
      "  --ping           liveness probe (default request)\n"
      "  --stats          fetch the server's metrics snapshot\n"
      "  --json REQ       send a raw JSON request frame\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ara;

  std::string socket_path;
  std::string request = "{\"type\":\"ping\"}";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--ping") {
      request = "{\"type\":\"ping\"}";
    } else if (arg == "--stats") {
      request = "{\"type\":\"stats\"}";
    } else if (arg == "--json") {
      request = next();
    } else {
      std::cerr << "unknown option '" << arg << "' (see --help)\n";
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::cerr << "error: --socket PATH is required (see --help)\n";
    return 2;
  }

  const int fd = serve::protocol::connect_unix(socket_path);
  if (fd < 0) {
    std::cerr << "error: cannot connect to '" << socket_path << "'\n";
    return 1;
  }
  std::string response;
  const bool ok =
      serve::protocol::write_frame(fd, request) &&
      serve::protocol::read_frame(fd, &response) ==
          serve::protocol::ReadStatus::kOk;
  ::close(fd);
  if (!ok) {
    std::cerr << "error: request failed (server gone or frame damaged)\n";
    return 1;
  }
  std::cout << response << "\n";
  return 0;
}
