// ara_analyze — whole-program static analysis CLI.
//
//   ara_analyze [--json] [--baseline FILE] [--write-baseline FILE]
//               [--doc FILE]... [--list-rules] <path>...
//
// Exit codes mirror ara_lint: 0 clean, 1 findings, 2 usage/IO error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze_core.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--baseline FILE] [--write-baseline FILE]"
               " [--doc FILE]... [--list-rules] <path>...\n"
               "  <path>     file or directory scanned recursively for"
               " .h/.hpp/.cc/.cpp\n"
               "  --doc      documentation file cross-referenced by the"
               " stat-name analysis\n"
               "  --baseline findings whose key is listed are counted, not"
               " reported\n"
               "  --write-baseline  write the current finding keys and exit"
               " 0\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_rules = false;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> docs;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--baseline") {
      if (++i >= argc) return usage(argv[0]);
      baseline_path = argv[i];
    } else if (arg == "--write-baseline") {
      if (++i >= argc) return usage(argv[0]);
      write_baseline_path = argv[i];
    } else if (arg == "--doc") {
      if (++i >= argc) return usage(argv[0]);
      docs.push_back(argv[i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : ara::analyze::rules()) {
      std::printf("%-22s %s\n", rule.id.c_str(), rule.summary.c_str());
    }
    return 0;
  }
  if (roots.empty()) return usage(argv[0]);

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "ara_analyze: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    baseline = ara::analyze::parse_baseline(buf.str());
  }

  const ara::analyze::Corpus corpus = ara::analyze::load_corpus(roots, docs);
  if (corpus.files.empty()) {
    std::fprintf(stderr, "ara_analyze: no source files under given paths\n");
    return 2;
  }

  const ara::analyze::AnalyzeResult result = ara::analyze::analyze(
      corpus, write_baseline_path.empty() ? baseline : std::set<std::string>{},
      baseline_path);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::fprintf(stderr, "ara_analyze: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << ara::analyze::to_baseline(result);
    std::fprintf(stderr, "ara_analyze: wrote %zu key(s) to %s\n",
                 result.findings.size(), write_baseline_path.c_str());
    return 0;
  }

  std::cout << (json ? ara::analyze::to_json(result)
                     : ara::analyze::to_text(result));
  return result.findings.empty() ? 0 : 1;
}
