// ara_lint CLI — run the rule engine (tools/lint_core.h) over files or
// directory trees and report findings.
//
//   ara_lint [--json] [--list-rules] <path>...
//
// Exit status: 0 when every finding is suppressed (or none exist), 1 when
// unsuppressed findings remain, 2 on usage errors. The `lint` CMake target
// and the `lint_repo` ctest wire this over src/ tools/ examples/ bench/.
#include <cstdio>
#include <string>
#include <vector>

#include "lint_core.h"

int main(int argc, char** argv) {
  bool json = false;
  bool list_rules = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: ara_lint [--json] [--list-rules] <path>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ara_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : ara::lint::rules()) {
      std::printf("%-20s %s\n", rule.id.c_str(), rule.summary.c_str());
    }
    return 0;
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: ara_lint [--json] [--list-rules] <path>...\n");
    return 2;
  }

  const ara::lint::LintResult result = ara::lint::lint_paths(roots);
  if (result.files_scanned == 0) {
    std::fprintf(stderr, "ara_lint: no .h/.cc/.cpp files under given paths\n");
    return 2;
  }
  const std::string rendered =
      json ? ara::lint::to_json(result) : ara::lint::to_text(result);
  std::fputs(rendered.c_str(), stdout);
  return result.findings.empty() ? 0 : 1;
}
